/**
 * @file
 * Runtime SIMD dispatch suite: the BPSIM_SIMD environment override
 * and --simd/--no-simd resolution rules of core/simd.hh, and the
 * differential bit-identity contract of the batched kernels — a run
 * under any dispatch level must produce exactly the reference path's
 * MatrixResult in every deterministic field, at any thread count,
 * fused or per-cell, and across a checkpoint/resume boundary.
 *
 * Tests mutate the process environment (BPSIM_SIMD), so every test
 * runs under a fixture whose SetUp/TearDown clear it.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "core/runner.hh"
#include "core/simd.hh"
#include "obs/run_journal.hh"
#include "support/error.hh"
#include "support/fault.hh"
#include "workload/specint.hh"

namespace bpsim
{
namespace
{

constexpr Count testProfileBranches = 60'000;
constexpr Count testEvalBranches = 120'000;

ExperimentConfig
testConfig(PredictorKind kind, StaticScheme scheme)
{
    ExperimentConfig config;
    config.kind = kind;
    config.sizeBytes = 2048;
    config.scheme = scheme;
    config.profileBranches = testProfileBranches;
    config.evalBranches = testEvalBranches;
    return config;
}

/** 2 programs x 3 kinds x 2 schemes = 12 cells; the kind spread
 * covers the pc-indexed, history-serialized and multi-table batch
 * kernel shapes. */
void
addTestCells(ExperimentRunner &runner)
{
    for (const auto id : {SpecProgram::Go, SpecProgram::Compress}) {
        const std::size_t program =
            runner.addProgram(makeSpecProgram(id, InputSet::Ref));
        for (const auto kind :
             {PredictorKind::Bimodal, PredictorKind::Gshare,
              PredictorKind::TwoBcGskew}) {
            for (const auto scheme :
                 {StaticScheme::None, StaticScheme::Static95}) {
                runner.addCell(program, testConfig(kind, scheme));
            }
        }
    }
}

RunnerOptions
matrixOptions(unsigned threads, bool fused, bool simd)
{
    RunnerOptions options;
    options.threads = threads;
    options.fused = fused;
    options.simd = simd;
    return options;
}

MatrixResult
runMatrix(const RunnerOptions &options)
{
    ExperimentRunner runner(options);
    addTestCells(runner);
    return runner.run();
}

void
expectSameStats(const SimStats &a, const SimStats &b)
{
    EXPECT_EQ(a.branches, b.branches);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.mispredictions, b.mispredictions);
    EXPECT_EQ(a.staticPredicted, b.staticPredicted);
    EXPECT_EQ(a.staticMispredictions, b.staticMispredictions);
    EXPECT_EQ(a.collisions.lookups, b.collisions.lookups);
    EXPECT_EQ(a.collisions.collisions, b.collisions.collisions);
    EXPECT_EQ(a.collisions.constructive, b.collisions.constructive);
    EXPECT_EQ(a.collisions.destructive, b.collisions.destructive);
}

/** Deterministic-field identity; path flags (usedSimd) are checked
 * separately since they legitimately differ across dispatch levels. */
void
expectSameMatrix(const MatrixResult &got, const MatrixResult &ref)
{
    ASSERT_EQ(got.cells.size(), ref.cells.size());
    for (std::size_t i = 0; i < got.cells.size(); ++i) {
        ASSERT_TRUE(got.cells[i].ok()) << "cell " << i;
        expectSameStats(got.cells[i].result.stats,
                        ref.cells[i].result.stats);
        EXPECT_EQ(got.cells[i].result.hintCount,
                  ref.cells[i].result.hintCount);
        EXPECT_EQ(got.cells[i].result.simulatedBranches,
                  ref.cells[i].result.simulatedBranches);
        EXPECT_EQ(got.cells[i].usedKernel, ref.cells[i].usedKernel);
    }
    EXPECT_EQ(got.failedCells, ref.failedCells);
    EXPECT_EQ(got.totalBranches, ref.totalBranches);
    EXPECT_EQ(got.actualBranches, ref.actualBranches);
    EXPECT_EQ(got.kernelCells, ref.kernelCells);
}

class SimdTest : public ::testing::Test
{
  protected:
    void SetUp() override { ::unsetenv("BPSIM_SIMD"); }
    void
    TearDown() override
    {
        ::unsetenv("BPSIM_SIMD");
        FaultInjector::instance().disarm();
    }
};

/** Reference: batch kernels off, one thread, per-cell execution. */
const MatrixResult &
reference()
{
    static const MatrixResult result = [] {
        ::unsetenv("BPSIM_SIMD");
        return runMatrix(matrixOptions(1, false, false));
    }();
    return result;
}

TEST_F(SimdTest, ResolveHonoursTheEnabledFlag)
{
    EXPECT_EQ(resolveSimdLevel(false), SimdLevel::Off);
    EXPECT_EQ(resolveSimdLevel(true), detectSimdLevel());
    // The detected level is a real kernel set, never Off.
    EXPECT_NE(detectSimdLevel(), SimdLevel::Off);
}

TEST_F(SimdTest, EnvOffAndScalarOverrideTheFlag)
{
    ::setenv("BPSIM_SIMD", "off", 1);
    EXPECT_EQ(resolveSimdLevel(true), SimdLevel::Off);
    EXPECT_EQ(resolveSimdLevel(false), SimdLevel::Off);

    ::setenv("BPSIM_SIMD", "scalar", 1);
    EXPECT_EQ(resolveSimdLevel(true), SimdLevel::Scalar);
    // The override also wins over --no-simd: it names a level, not a
    // preference.
    EXPECT_EQ(resolveSimdLevel(false), SimdLevel::Scalar);
}

TEST_F(SimdTest, UnsupportedForcedLevelFallsBackToScalar)
{
    const SimdLevel detected = detectSimdLevel();

    ::setenv("BPSIM_SIMD", "avx2", 1);
    EXPECT_EQ(resolveSimdLevel(true), detected == SimdLevel::Avx2
                                          ? SimdLevel::Avx2
                                          : SimdLevel::Scalar);

    ::setenv("BPSIM_SIMD", "neon", 1);
    EXPECT_EQ(resolveSimdLevel(true), detected == SimdLevel::Neon
                                          ? SimdLevel::Neon
                                          : SimdLevel::Scalar);
}

TEST_F(SimdTest, UnknownEnvValueIsIgnored)
{
    ::setenv("BPSIM_SIMD", "quantum", 1);
    EXPECT_EQ(resolveSimdLevel(true), detectSimdLevel());
    EXPECT_EQ(resolveSimdLevel(false), SimdLevel::Off);
}

TEST_F(SimdTest, LevelNamesAndWidthsAreConsistent)
{
    EXPECT_STREQ(simdLevelName(SimdLevel::Off), "off");
    EXPECT_STREQ(simdLevelName(SimdLevel::Scalar), "scalar");
    EXPECT_STREQ(simdLevelName(SimdLevel::Avx2), "avx2");
    EXPECT_STREQ(simdLevelName(SimdLevel::Neon), "neon");
    EXPECT_EQ(simdWidth(SimdLevel::Off), 1u);
    EXPECT_EQ(simdWidth(SimdLevel::Scalar), 1u);
    EXPECT_EQ(simdWidth(SimdLevel::Avx2), 8u);
    EXPECT_EQ(simdWidth(SimdLevel::Neon), 4u);
}

TEST_F(SimdTest, BitIdenticalAcrossDispatchAtAnyThreadCount)
{
    const MatrixResult &ref = reference();
    EXPECT_EQ(ref.dispatch, "off");
    EXPECT_EQ(ref.simdCells, 0u);

    for (const unsigned threads : {1u, 2u, 4u}) {
        for (const bool fused : {false, true}) {
            const MatrixResult got =
                runMatrix(matrixOptions(threads, fused, true));
            expectSameMatrix(got, ref);
            EXPECT_EQ(got.dispatch,
                      simdLevelName(detectSimdLevel()))
                << threads << " threads, fused=" << fused;
            // Fused passes batch every shape (plain, profiling and
            // hinted sims, via the shared site index); the per-cell
            // path batches only the plain dynamic cells — hinted
            // and profiling runs keep the record-at-a-time kernels
            // there, so exactly the scheme-none half batches.
            EXPECT_EQ(got.simdCells,
                      fused ? got.kernelCells : got.kernelCells / 2)
                << threads << " threads, fused=" << fused;
        }
    }
}

/**
 * The tagged family (tage, perceptron) publishes no batch kernels:
 * hasBatchKernels is false, so SIMD dispatch must fall back to the
 * record-at-a-time reference kernels in place — zero simdCells, and
 * results bit-identical to a SIMD-off run at any thread count, fused
 * or per-cell. Separate cell set so the kernelCells/2 arithmetic in
 * the batched-kind tests above is untouched.
 */
MatrixResult
runTaggedMatrix(const RunnerOptions &options)
{
    ExperimentRunner runner(options);
    for (const auto id : {SpecProgram::Go, SpecProgram::Compress}) {
        const std::size_t program =
            runner.addProgram(makeSpecProgram(id, InputSet::Ref));
        for (const char *predictor : {"tage", "perceptron"}) {
            for (const auto scheme :
                 {StaticScheme::None, StaticScheme::Static95}) {
                ExperimentConfig config;
                config.predictor = predictor;
                config.sizeBytes = 2048;
                config.scheme = scheme;
                config.profileBranches = testProfileBranches;
                config.evalBranches = testEvalBranches;
                runner.addCell(program, config);
            }
        }
    }
    return runner.run();
}

TEST_F(SimdTest, TaggedFamilyFallsBackToReferenceBitIdentically)
{
    const MatrixResult ref =
        runTaggedMatrix(matrixOptions(1, false, false));
    EXPECT_EQ(ref.simdCells, 0u);
    EXPECT_EQ(ref.kernelCells, ref.cells.size());

    for (const unsigned threads : {1u, 2u, 4u}) {
        for (const bool fused : {false, true}) {
            const MatrixResult got = runTaggedMatrix(
                matrixOptions(threads, fused, true));
            expectSameMatrix(got, ref);
            EXPECT_EQ(got.simdCells, 0u)
                << threads << " threads, fused=" << fused;
        }
    }
}

TEST_F(SimdTest, EnvOffForcesTheReferencePathDespiteTheFlag)
{
    ::setenv("BPSIM_SIMD", "off", 1);
    const MatrixResult got = runMatrix(matrixOptions(2, true, true));
    expectSameMatrix(got, reference());
    EXPECT_EQ(got.dispatch, "off");
    EXPECT_EQ(got.simdCells, 0u);
}

TEST_F(SimdTest, EnvScalarForcesThePortableBatchKernels)
{
    ::setenv("BPSIM_SIMD", "scalar", 1);
    const MatrixResult got = runMatrix(matrixOptions(2, true, true));
    expectSameMatrix(got, reference());
    EXPECT_EQ(got.dispatch, "scalar");
    EXPECT_EQ(got.simdLanes, 1u);
    EXPECT_EQ(got.simdCells, got.kernelCells);
}

TEST_F(SimdTest, PerCellConfigNarrowsTheRunnerDefault)
{
    ExperimentRunner runner(matrixOptions(1, false, true));
    const std::size_t program = runner.addProgram(
        makeSpecProgram(SpecProgram::Go, InputSet::Ref));
    ExperimentConfig batched =
        testConfig(PredictorKind::Gshare, StaticScheme::None);
    ExperimentConfig narrowed = batched;
    narrowed.simd = false;
    runner.addCell(program, batched, "go/batched");
    runner.addCell(program, narrowed, "go/narrowed");
    const MatrixResult got = runner.run();

    ASSERT_EQ(got.cells.size(), 2u);
    ASSERT_TRUE(got.cells[0].ok());
    ASSERT_TRUE(got.cells[1].ok());
    EXPECT_TRUE(got.cells[0].usedSimd);
    EXPECT_FALSE(got.cells[1].usedSimd);
    EXPECT_EQ(got.cells[0].usedKernel, got.cells[1].usedKernel);
    expectSameStats(got.cells[0].result.stats,
                    got.cells[1].result.stats);
}

TEST_F(SimdTest, CheckpointRoundTripsAcrossDispatchLevels)
{
    const std::string path =
        ::testing::TempDir() + "simd_checkpoint.jsonl";
    std::remove(path.c_str());

    RunnerOptions first = matrixOptions(2, true, true);
    first.checkpointPath = path;
    const MatrixResult executed = runMatrix(first);
    for (const CellResult &cell : executed.cells)
        ASSERT_TRUE(cell.ok());

    // Resume under the opposite dispatch level: the fingerprint
    // ignores the simd flag, so every cell restores, and the
    // persisted path flags survive verbatim.
    RunnerOptions second = matrixOptions(1, false, false);
    second.checkpointPath = path;
    second.resume = true;
    const MatrixResult restored = runMatrix(second);

    EXPECT_EQ(restored.restoredCells, restored.cells.size());
    expectSameMatrix(restored, reference());
    EXPECT_EQ(restored.simdCells, executed.simdCells);
    for (std::size_t i = 0; i < restored.cells.size(); ++i) {
        EXPECT_TRUE(restored.cells[i].restored) << "cell " << i;
        EXPECT_EQ(restored.cells[i].usedSimd,
                  executed.cells[i].usedSimd)
            << "cell " << i;
    }
    std::remove(path.c_str());
}

TEST_F(SimdTest, FaultUnderBatchDispatchKillsOnlyTheTargetedCell)
{
    const MatrixResult &ref = reference();
    // go's gshare static_95 cell: a batched gang member in the fused
    // pass. Its death must not perturb its gang-mates' batched state.
    constexpr const char *target = "go/gshare:2048/static_95";
    constexpr std::size_t target_index = 3;
    FaultInjector::instance().arm(fault_points::cell, 1,
                                  ErrorCode::CellFailed, 1, target);
    const MatrixResult got = runMatrix(matrixOptions(2, true, true));

    EXPECT_EQ(got.failedCells, 1u);
    ASSERT_FALSE(got.cells[target_index].ok());
    EXPECT_EQ(got.cells[target_index].error->code(),
              ErrorCode::CellFailed);
    for (std::size_t i = 0; i < got.cells.size(); ++i) {
        if (i == target_index)
            continue;
        ASSERT_TRUE(got.cells[i].ok()) << "cell " << i;
        expectSameStats(got.cells[i].result.stats,
                        ref.cells[i].result.stats);
        EXPECT_EQ(got.cells[i].result.hintCount,
                  ref.cells[i].result.hintCount);
    }
}

TEST_F(SimdTest, JournalRecordsDispatchAndSimdCells)
{
    obs::RunJournal journal("simd journal");
    RunnerOptions options = matrixOptions(2, true, true);
    options.journal = &journal;
    const MatrixResult got = runMatrix(options);
    expectSameMatrix(got, reference());

    const obs::JournalSummary summary = journal.summary();
    EXPECT_EQ(summary.dispatch, got.dispatch);
    EXPECT_EQ(summary.simdWidth, got.simdLanes);
    EXPECT_EQ(summary.simdCells, got.simdCells);
    EXPECT_EQ(summary.kernelCells, got.kernelCells);
}

} // namespace
} // namespace bpsim
