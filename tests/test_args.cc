/**
 * @file
 * Unit tests for the command-line option parser.
 */

#include <gtest/gtest.h>

#include <vector>

#include "predictor/registry.hh"
#include "support/args.hh"

namespace bpsim
{
namespace
{

/** Build an argv-style array from string literals. */
class Argv
{
  public:
    explicit Argv(std::vector<std::string> args) : storage(std::move(args))
    {
        for (auto &arg : storage)
            pointers.push_back(arg.data());
    }

    int argc() const { return static_cast<int>(pointers.size()); }
    char **argv() { return pointers.data(); }

  private:
    std::vector<std::string> storage;
    std::vector<char *> pointers;
};

TEST(ArgParserTest, DefaultsAndOverrides)
{
    ArgParser args("test");
    args.addOption("size", "8192", "predictor size");
    args.addOption("name", "gshare", "scheme");
    args.addFlag("csv", "csv output");

    Argv argv({"tool", "--size", "4096", "--csv"});
    args.parse(argv.argc(), argv.argv());

    EXPECT_EQ(args.get("size"), "4096");
    EXPECT_EQ(args.getUint("size"), 4096u);
    EXPECT_EQ(args.get("name"), "gshare"); // default preserved
    EXPECT_TRUE(args.getFlag("csv"));
}

TEST(ArgParserTest, EqualsSyntaxAndPositionals)
{
    ArgParser args("test");
    args.addOption("cutoff", "0.95", "bias cutoff");
    Argv argv({"tool", "run", "--cutoff=0.9", "extra"});
    args.parse(argv.argc(), argv.argv());
    EXPECT_DOUBLE_EQ(args.getDouble("cutoff"), 0.9);
    ASSERT_EQ(args.positional().size(), 2u);
    EXPECT_EQ(args.positional()[0], "run");
    EXPECT_EQ(args.positional()[1], "extra");
}

TEST(ArgParserTest, RepeatedOptionKeepsLastValue)
{
    // Pinning the documented repeated-flag semantics: a later --name
    // overrides an earlier one, so scripts can append overrides
    // without scrubbing earlier arguments — and downstream consumers
    // (e.g. the bench --warmup accounting) see the value exactly
    // once, never accumulated per occurrence.
    ArgParser args("test");
    args.addOption("warmup", "0", "warmup branches");
    Argv argv({"tool", "--warmup", "1000", "--warmup", "250"});
    args.parse(argv.argc(), argv.argv());
    EXPECT_EQ(args.getUint("warmup"), 250u);
}

TEST(ArgParserTest, RepeatedOptionMixedSyntax)
{
    ArgParser args("test");
    args.addOption("journal", "", "journal path");
    Argv argv({"tool", "--journal=a.jsonl", "--journal", "b.jsonl"});
    args.parse(argv.argc(), argv.argv());
    EXPECT_EQ(args.get("journal"), "b.jsonl");
}

TEST(ArgParserTest, RepeatedFlagIsIdempotent)
{
    ArgParser args("test");
    args.addFlag("csv", "csv output");
    Argv argv({"tool", "--csv", "--csv", "--csv"});
    args.parse(argv.argc(), argv.argv());
    EXPECT_TRUE(args.getFlag("csv"));
}

// The exiting entry points reject bad command lines with the
// structured config_invalid error, a usage hint, and exit code 2
// (usageExitCode) — distinguishable from runtime failures (1).

TEST(ArgParserTest, UnknownOptionExitsUsageCode)
{
    ArgParser args("test");
    args.addOption("size", "1", "x");
    Argv argv({"tool", "--bogus", "3"});
    EXPECT_EXIT(args.parse(argv.argc(), argv.argv()),
                ::testing::ExitedWithCode(usageExitCode),
                "\\[config_invalid\\] unknown option '--bogus'");
}

TEST(ArgParserTest, MissingValueExitsUsageCode)
{
    ArgParser args("test");
    args.addOption("size", "1", "x");
    Argv argv({"tool", "--size"});
    EXPECT_EXIT(args.parse(argv.argc(), argv.argv()),
                ::testing::ExitedWithCode(usageExitCode),
                "option '--size' needs a value");
}

TEST(ArgParserTest, BadNumberExitsUsageCode)
{
    ArgParser args("test");
    args.addOption("size", "1", "x");
    Argv argv({"tool", "--size", "abc"});
    args.parse(argv.argc(), argv.argv());
    EXPECT_EXIT(args.getUint("size"),
                ::testing::ExitedWithCode(usageExitCode),
                "expects an integer, got 'abc'");
}

// A bad --predictor value surfaces through the same structured
// config_invalid path as the parser's own errors; the registry
// rejection names every registered predictor so the hint is
// actionable from the command line.
TEST(ArgParserTest, BadPredictorValueListsRegisteredNames)
{
    ArgParser args("test");
    args.addOption("predictor", "gshare:2048", "predictor spec");
    Argv argv({"tool", "--predictor", "nosuch:64"});
    args.parse(argv.argc(), argv.argv());

    const Result<ParsedPredictorSpec> parsed =
        parsePredictorSpec(args.get("predictor"));
    ASSERT_FALSE(parsed.ok());
    EXPECT_EQ(parsed.error().code(), ErrorCode::ConfigInvalid);
    const std::string &message = parsed.error().message();
    EXPECT_NE(message.find("unknown predictor 'nosuch'"),
              std::string::npos);
    for (const std::string &name :
         PredictorRegistry::instance().names())
        EXPECT_NE(message.find(name), std::string::npos) << name;

    const Result<ParsedPredictorSpec> bad_size =
        parsePredictorSpec("gshare:not-a-size");
    ASSERT_FALSE(bad_size.ok());
    EXPECT_EQ(bad_size.error().code(), ErrorCode::ConfigInvalid);
    EXPECT_NE(bad_size.error().message().find("bad predictor size"),
              std::string::npos);
}

TEST(ArgParserTest, TryParseReturnsStructuredError)
{
    ArgParser args("test");
    args.addOption("size", "1", "x");
    Argv argv({"tool", "--bogus"});
    const Result<void> parsed =
        args.tryParse(argv.argc(), argv.argv());
    ASSERT_FALSE(parsed.ok());
    EXPECT_EQ(parsed.error().code(), ErrorCode::ConfigInvalid);
    EXPECT_EQ(parsed.error().message(),
              "unknown option '--bogus'");
    ASSERT_EQ(parsed.error().context().size(), 1u);
    EXPECT_EQ(parsed.error().context()[0], "see --help for usage");
}

TEST(ArgParserTest, TryParseFlagWithValueFails)
{
    ArgParser args("test");
    args.addFlag("csv", "csv output");
    Argv argv({"tool", "--csv=yes"});
    const Result<void> parsed =
        args.tryParse(argv.argc(), argv.argv());
    ASSERT_FALSE(parsed.ok());
    EXPECT_EQ(parsed.error().message(),
              "flag '--csv' takes no value");
}

TEST(ArgParserTest, TryGetUintNamesOffendingToken)
{
    ArgParser args("test");
    args.addOption("size", "1", "x");
    Argv argv({"tool", "--size", "12monkeys"});
    ASSERT_TRUE(args.tryParse(argv.argc(), argv.argv()).ok());
    const Result<std::uint64_t> value = args.tryGetUint("size");
    ASSERT_FALSE(value.ok());
    EXPECT_EQ(value.error().code(), ErrorCode::ConfigInvalid);
    EXPECT_EQ(value.error().message(),
              "option '--size' expects an integer, got '12monkeys'");
}

TEST(ArgParserTest, TryGetDoubleNamesOffendingToken)
{
    ArgParser args("test");
    args.addOption("cutoff", "0.5", "x");
    Argv argv({"tool", "--cutoff", "fast"});
    ASSERT_TRUE(args.tryParse(argv.argc(), argv.argv()).ok());
    const Result<double> value = args.tryGetDouble("cutoff");
    ASSERT_FALSE(value.ok());
    EXPECT_EQ(value.error().message(),
              "option '--cutoff' expects a number, got 'fast'");
}

TEST(ArgParserTest, TryVariantsSucceedOnGoodInput)
{
    ArgParser args("test");
    args.addOption("size", "1", "x");
    args.addOption("cutoff", "0.5", "x");
    Argv argv({"tool", "--size", "4096", "--cutoff=0.9"});
    ASSERT_TRUE(args.tryParse(argv.argc(), argv.argv()).ok());
    const Result<std::uint64_t> size = args.tryGetUint("size");
    ASSERT_TRUE(size.ok());
    EXPECT_EQ(size.value(), 4096u);
    const Result<double> cutoff = args.tryGetDouble("cutoff");
    ASSERT_TRUE(cutoff.ok());
    EXPECT_DOUBLE_EQ(cutoff.value(), 0.9);
}

TEST(ArgParserTest, UsageListsOptions)
{
    ArgParser args("mytool");
    args.addOption("alpha", "7", "the alpha knob");
    args.addFlag("verbose", "say more");
    const std::string text = args.usage();
    EXPECT_NE(text.find("mytool"), std::string::npos);
    EXPECT_NE(text.find("--alpha"), std::string::npos);
    EXPECT_NE(text.find("default: 7"), std::string::npos);
    EXPECT_NE(text.find("--verbose"), std::string::npos);
}

} // namespace
} // namespace bpsim
