/**
 * @file
 * Unit tests for the command-line option parser.
 */

#include <gtest/gtest.h>

#include <vector>

#include "support/args.hh"

namespace bpsim
{
namespace
{

/** Build an argv-style array from string literals. */
class Argv
{
  public:
    explicit Argv(std::vector<std::string> args) : storage(std::move(args))
    {
        for (auto &arg : storage)
            pointers.push_back(arg.data());
    }

    int argc() const { return static_cast<int>(pointers.size()); }
    char **argv() { return pointers.data(); }

  private:
    std::vector<std::string> storage;
    std::vector<char *> pointers;
};

TEST(ArgParserTest, DefaultsAndOverrides)
{
    ArgParser args("test");
    args.addOption("size", "8192", "predictor size");
    args.addOption("name", "gshare", "scheme");
    args.addFlag("csv", "csv output");

    Argv argv({"tool", "--size", "4096", "--csv"});
    args.parse(argv.argc(), argv.argv());

    EXPECT_EQ(args.get("size"), "4096");
    EXPECT_EQ(args.getUint("size"), 4096u);
    EXPECT_EQ(args.get("name"), "gshare"); // default preserved
    EXPECT_TRUE(args.getFlag("csv"));
}

TEST(ArgParserTest, EqualsSyntaxAndPositionals)
{
    ArgParser args("test");
    args.addOption("cutoff", "0.95", "bias cutoff");
    Argv argv({"tool", "run", "--cutoff=0.9", "extra"});
    args.parse(argv.argc(), argv.argv());
    EXPECT_DOUBLE_EQ(args.getDouble("cutoff"), 0.9);
    ASSERT_EQ(args.positional().size(), 2u);
    EXPECT_EQ(args.positional()[0], "run");
    EXPECT_EQ(args.positional()[1], "extra");
}

TEST(ArgParserTest, RepeatedOptionKeepsLastValue)
{
    // Pinning the documented repeated-flag semantics: a later --name
    // overrides an earlier one, so scripts can append overrides
    // without scrubbing earlier arguments — and downstream consumers
    // (e.g. the bench --warmup accounting) see the value exactly
    // once, never accumulated per occurrence.
    ArgParser args("test");
    args.addOption("warmup", "0", "warmup branches");
    Argv argv({"tool", "--warmup", "1000", "--warmup", "250"});
    args.parse(argv.argc(), argv.argv());
    EXPECT_EQ(args.getUint("warmup"), 250u);
}

TEST(ArgParserTest, RepeatedOptionMixedSyntax)
{
    ArgParser args("test");
    args.addOption("journal", "", "journal path");
    Argv argv({"tool", "--journal=a.jsonl", "--journal", "b.jsonl"});
    args.parse(argv.argc(), argv.argv());
    EXPECT_EQ(args.get("journal"), "b.jsonl");
}

TEST(ArgParserTest, RepeatedFlagIsIdempotent)
{
    ArgParser args("test");
    args.addFlag("csv", "csv output");
    Argv argv({"tool", "--csv", "--csv", "--csv"});
    args.parse(argv.argc(), argv.argv());
    EXPECT_TRUE(args.getFlag("csv"));
}

TEST(ArgParserTest, UnknownOptionIsFatal)
{
    ArgParser args("test");
    args.addOption("size", "1", "x");
    Argv argv({"tool", "--bogus", "3"});
    EXPECT_EXIT(args.parse(argv.argc(), argv.argv()),
                ::testing::ExitedWithCode(1), "unknown option");
}

TEST(ArgParserTest, MissingValueIsFatal)
{
    ArgParser args("test");
    args.addOption("size", "1", "x");
    Argv argv({"tool", "--size"});
    EXPECT_EXIT(args.parse(argv.argc(), argv.argv()),
                ::testing::ExitedWithCode(1), "needs a value");
}

TEST(ArgParserTest, BadNumberIsFatal)
{
    ArgParser args("test");
    args.addOption("size", "1", "x");
    Argv argv({"tool", "--size", "abc"});
    args.parse(argv.argc(), argv.argv());
    EXPECT_EXIT(args.getUint("size"), ::testing::ExitedWithCode(1),
                "expects an integer");
}

TEST(ArgParserTest, UsageListsOptions)
{
    ArgParser args("mytool");
    args.addOption("alpha", "7", "the alpha knob");
    args.addFlag("verbose", "say more");
    const std::string text = args.usage();
    EXPECT_NE(text.find("mytool"), std::string::npos);
    EXPECT_NE(text.find("--alpha"), std::string::npos);
    EXPECT_NE(text.find("default: 7"), std::string::npos);
    EXPECT_NE(text.find("--verbose"), std::string::npos);
}

} // namespace
} // namespace bpsim
