/**
 * @file
 * Tests for the workflow-level extensions: Lindsay-style iterative
 * selection, the profile repository (multi-run Spike database), the
 * pipeline CPI model, and the gselect predictor.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include "core/cpi_model.hh"
#include "core/engine.hh"
#include "core/experiment.hh"
#include "core/iterative.hh"
#include "predictor/gselect.hh"
#include "profile/repository.hh"
#include "workload/specint.hh"

namespace bpsim
{
namespace
{

TEST(IterativeSelectionTest, ConvergesAndAccumulates)
{
    SyntheticProgram program =
        makeSpecProgram(SpecProgram::Gcc, InputSet::Ref);
    IterativeConfig config;
    config.kind = PredictorKind::Gshare;
    config.sizeBytes = 4096;
    config.profileBranches = 300000;
    config.maxIterations = 4;

    const IterativeResult result =
        selectStaticIterative(program, config);
    EXPECT_GE(result.iterations, 1u);
    EXPECT_LE(result.iterations, 4u);
    EXPECT_GT(result.hints.size(), 10u);
    ASSERT_EQ(result.addedPerRound.size(), result.iterations);
    // The first round must find the bulk of the hints.
    EXPECT_GE(result.addedPerRound[0], result.hints.size() / 2);
}

TEST(IterativeSelectionTest, HintsImproveThePredictor)
{
    SyntheticProgram program =
        makeSpecProgram(SpecProgram::Gcc, InputSet::Ref);
    IterativeConfig config;
    config.kind = PredictorKind::Gshare;
    config.sizeBytes = 4096;
    config.profileBranches = 400000;

    const IterativeResult selection =
        selectStaticIterative(program, config);

    SimOptions options;
    options.maxBranches = 400000;
    program.setInput(InputSet::Ref);

    auto baseline = makePredictor(config.kind, config.sizeBytes);
    const SimStats base = simulate(*baseline, program, options);

    CombinedPredictor combined(
        makePredictor(config.kind, config.sizeBytes),
        selection.hints);
    const SimStats with = simulate(combined, program, options);
    EXPECT_LT(with.mispKi(), base.mispKi());
}

TEST(CpiModelTest, Arithmetic)
{
    SimStats stats;
    stats.instructions = 1000;
    stats.mispredictions = 10;
    const double cpi = estimateCpi(stats);
    EXPECT_DOUBLE_EQ(cpi, 1.0 + 7.0 * 10.0 / 1000.0);

    SimStats better = stats;
    better.mispredictions = 0;
    EXPECT_DOUBLE_EQ(estimateCpi(better), 1.0);
    EXPECT_NEAR(estimateSpeedup(stats, better), 1.07, 1e-9);

    PipelineParams deep;
    deep.baseCpi = 0.5;
    deep.mispredictPenalty = 20.0;
    EXPECT_DOUBLE_EQ(estimateCpi(stats, deep), 0.5 + 0.2);
}

class RepositoryTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir = testing::TempDir() + "bpsim_repo_" +
              std::to_string(::getpid());
        std::filesystem::remove_all(dir);
    }

    void TearDown() override { std::filesystem::remove_all(dir); }

    ProfileDb
    makeRun(Addr pc, Count executed, double taken_rate)
    {
        ProfileDb db;
        for (Count i = 0; i < executed; ++i) {
            db.recordOutcome(
                pc, i < static_cast<Count>(taken_rate *
                                           static_cast<double>(
                                               executed)));
        }
        return db;
    }

    std::string dir;
};

TEST_F(RepositoryTest, AddAndCountRuns)
{
    ProfileRepository repo(dir);
    EXPECT_EQ(repo.runCount("gcc"), 0u);
    EXPECT_EQ(repo.addRun("gcc", makeRun(0x100, 50, 0.9)), 0u);
    EXPECT_EQ(repo.addRun("gcc", makeRun(0x100, 50, 0.8)), 1u);
    EXPECT_EQ(repo.runCount("gcc"), 2u);
    EXPECT_EQ(repo.runCount("perl"), 0u);

    // A fresh handle sees the same persisted state.
    ProfileRepository reopened(dir);
    EXPECT_EQ(reopened.runCount("gcc"), 2u);
}

TEST_F(RepositoryTest, MergedSumsAcrossRuns)
{
    ProfileRepository repo(dir);
    repo.addRun("gcc", makeRun(0x100, 100, 0.9));
    repo.addRun("gcc", makeRun(0x100, 100, 0.7));
    const ProfileDb merged = repo.merged("gcc");
    ASSERT_NE(merged.find(0x100), nullptr);
    EXPECT_EQ(merged.find(0x100)->executed, 200u);
    EXPECT_EQ(merged.find(0x100)->taken, 160u);
}

TEST_F(RepositoryTest, StableMergeDropsUnstableBranches)
{
    ProfileRepository repo(dir);
    // Branch A stable across runs; branch B reverses.
    ProfileDb run0 = makeRun(0xa0, 100, 0.9);
    run0.mergeAdd(makeRun(0xb0, 100, 0.9));
    ProfileDb run1 = makeRun(0xa0, 100, 0.88);
    run1.mergeAdd(makeRun(0xb0, 100, 0.1));
    repo.addRun("gcc", run0);
    repo.addRun("gcc", run1);

    const ProfileDb stable = repo.stableMerged("gcc", 0.05);
    EXPECT_NE(stable.find(0xa0), nullptr);
    EXPECT_EQ(stable.find(0xb0), nullptr);
    // The survivor carries the merged counts.
    EXPECT_EQ(stable.find(0xa0)->executed, 200u);
}

TEST_F(RepositoryTest, CoverageHolesAreNotInstability)
{
    ProfileRepository repo(dir);
    ProfileDb run0 = makeRun(0xa0, 100, 0.9);
    ProfileDb run1 = makeRun(0xc0, 100, 0.5); // 0xa0 absent: fine
    repo.addRun("gcc", run0);
    repo.addRun("gcc", run1);
    const ProfileDb stable = repo.stableMerged("gcc", 0.05);
    EXPECT_NE(stable.find(0xa0), nullptr);
    EXPECT_NE(stable.find(0xc0), nullptr);
}

TEST(GselectTest, SizingAndIndexSplit)
{
    Gselect predictor(8192); // 32768 entries: 15 index bits
    EXPECT_EQ(predictor.sizeBytes(), 8192u);
    EXPECT_EQ(predictor.historyBits(), 7u); // half of 15, floored
}

TEST(GselectTest, LearnsAlternationAndSeparatesBranches)
{
    Gselect predictor(2048);
    double correct = 0;
    const int n = 4000;
    for (int i = 0; i < n; ++i) {
        const bool taken = i % 2 == 0;
        const bool prediction = predictor.predict(0x1000);
        predictor.update(0x1000, taken);
        predictor.updateHistory(taken);
        correct += prediction == taken;
    }
    EXPECT_GT(correct / n, 0.95);
}

TEST(GselectTest, FactoryName)
{
    auto predictor = makePredictor("gselect:4096");
    EXPECT_EQ(predictor->name(), "gselect");
    EXPECT_EQ(predictor->sizeBytes(), 4096u);
}

} // namespace
} // namespace bpsim
