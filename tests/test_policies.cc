/**
 * @file
 * Update-policy pinning tests. The hybrid predictors' partial-update
 * rules are the subtlest part of the paper's §2; each test here runs
 * the real implementation against an independent reference model of
 * the documented policy over a long random stream and demands
 * prediction-for-prediction equivalence. Any silent policy change
 * breaks these.
 */

#include <gtest/gtest.h>

#include <vector>

#include "core/engine.hh"
#include "predictor/bimode.hh"
#include "predictor/factory.hh"
#include "predictor/two_bc_gskew.hh"
#include "predictor/yags.hh"
#include "support/bits.hh"
#include "support/random.hh"
#include "support/sat_counter.hh"
#include "support/skew.hh"
#include "trace/memory_trace.hh"

namespace bpsim
{
namespace
{

/** Random (pc, taken) stimulus shared by the equivalence tests. */
std::vector<std::pair<Addr, bool>>
stimulus(std::uint64_t seed, std::size_t n)
{
    Rng rng(seed);
    std::vector<std::pair<Addr, bool>> events;
    events.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        const Addr pc = 0x120000000ULL + 4 * rng.nextBelow(3000);
        // Mix of biased and random outcomes keyed off the pc.
        const bool majority = (mix64(pc) & 1) != 0;
        const bool taken = rng.chance(0.8) ? majority : !majority;
        events.emplace_back(pc, taken);
    }
    return events;
}

TEST(BiModePolicy, ReferenceModelEquivalence)
{
    const std::size_t bytes = 2048;
    BiMode predictor(bytes);

    // Reference model of the documented bi-mode organisation:
    // choice = half the counters (PC-indexed, weak-taken init),
    // direction tables = a quarter each (gshare-indexed; taken table
    // weak-taken, not-taken table weak-not-taken), partial update.
    const std::size_t choice_entries = bytes / 2 * 4;
    const std::size_t dir_entries = bytes / 4 * 4;
    const BitCount dir_bits = floorLog2(dir_entries);
    std::vector<SatCounter> choice(choice_entries,
                                   SatCounter::weak(2, true));
    std::vector<SatCounter> taken_tbl(dir_entries,
                                      SatCounter::weak(2, true));
    std::vector<SatCounter> nt_tbl(dir_entries,
                                   SatCounter::weak(2, false));
    std::uint64_t hist = 0;

    for (const auto &[pc, taken] : stimulus(101, 30000)) {
        const std::size_t c_idx =
            (pc / 4) & mask(floorLog2(choice_entries));
        const std::size_t d_idx =
            (foldBits(pc / 4, dir_bits) ^ hist) & mask(dir_bits);

        const bool chose_taken = choice[c_idx].taken();
        auto &dir = chose_taken ? taken_tbl : nt_tbl;
        const bool ref_pred = dir[d_idx].taken();

        ASSERT_EQ(predictor.predict(pc), ref_pred) << std::hex << pc;

        // Reference update: selected direction table always trains;
        // choice trains unless it opposed the outcome while the
        // selected table was correct.
        dir[d_idx].train(taken);
        const bool correct = ref_pred == taken;
        if (!(chose_taken != taken && correct))
            choice[c_idx].train(taken);
        hist = ((hist << 1) | (taken ? 1 : 0)) & mask(dir_bits);

        predictor.update(pc, taken);
        predictor.updateHistory(taken);
    }
}

TEST(TwoBcGskewPolicy, ReferenceModelEquivalence)
{
    const std::size_t bytes = 2048;
    TwoBcGskew predictor(bytes);

    const std::size_t entries = bytes / 4 * 4; // per bank
    const BitCount bits = floorLog2(entries);
    const BitCount h0 = predictor.histG0Bits();
    const BitCount h1 = predictor.histG1Bits();
    const BitCount hm = predictor.histMetaBits();

    std::vector<SatCounter> bim(entries, SatCounter::weak(2, false));
    std::vector<SatCounter> g0(entries, SatCounter::weak(2, false));
    std::vector<SatCounter> g1(entries, SatCounter::weak(2, false));
    std::vector<SatCounter> meta(entries, SatCounter::weak(2, true));
    std::uint64_t hist = 0;

    const auto recent = [&](BitCount n) { return hist & mask(n); };

    for (const auto &[pc, taken] : stimulus(202, 30000)) {
        const std::size_t bim_idx = (pc / 4) & mask(bits);
        const std::uint64_t v1 = foldBits(pc / 4, bits);
        const std::size_t g0_idx = static_cast<std::size_t>(
            skewIndex(0, v1, foldBits(recent(h0), bits), bits));
        const std::size_t g1_idx = static_cast<std::size_t>(
            skewIndex(1, v1, foldBits(recent(h1), bits), bits));
        const std::size_t meta_idx = static_cast<std::size_t>(
            (v1 ^ foldBits(recent(hm), bits)) & mask(bits));

        const bool pb = bim[bim_idx].taken();
        const bool p0 = g0[g0_idx].taken();
        const bool p1 = g1[g1_idx].taken();
        const bool maj = (pb ? 1 : 0) + (p0 ? 1 : 0) + (p1 ? 1 : 0) >=
                         2;
        const bool use_maj = meta[meta_idx].taken();
        const bool ref_pred = use_maj ? maj : pb;

        ASSERT_EQ(predictor.predict(pc), ref_pred) << std::hex << pc;

        const bool correct = ref_pred == taken;
        if (!correct) {
            bim[bim_idx].train(taken);
            g0[g0_idx].train(taken);
            g1[g1_idx].train(taken);
        } else if (use_maj) {
            if (pb == taken)
                bim[bim_idx].train(taken);
            if (p0 == taken)
                g0[g0_idx].train(taken);
            if (p1 == taken)
                g1[g1_idx].train(taken);
        } else {
            bim[bim_idx].train(taken);
        }
        if (maj != pb)
            meta[meta_idx].train(maj == taken);
        hist = (hist << 1) | (taken ? 1 : 0);

        predictor.update(pc, taken);
        predictor.updateHistory(taken);
    }
}

TEST(YagsPolicy, LearnsAlternationThroughExceptionCaches)
{
    Yags predictor(2048);
    std::size_t correct = 0;
    std::size_t measured = 0;
    for (int i = 0; i < 6000; ++i) {
        const bool taken = i % 2 == 0;
        const bool prediction = predictor.predict(0x1000);
        predictor.update(0x1000, taken);
        predictor.updateHistory(taken);
        if (i > 2000) {
            ++measured;
            correct += prediction == taken;
        }
    }
    EXPECT_GT(static_cast<double>(correct) / measured, 0.95);
}

TEST(YagsPolicy, TagsProtectAgainstAliasing)
{
    // Same stimulus as the agree-predictor test: thousands of
    // opposite-bias branches over a tiny budget. YAGS's choice table
    // captures each bias and the tagged caches absorb exceptions, so
    // it must hold up far better than a plain gshare.
    auto run = [&](const char *spec) {
        auto predictor = makePredictor(spec);
        Rng rng(5);
        Count correct = 0;
        Count total = 0;
        for (int round = 0; round < 60; ++round) {
            for (int b = 0; b < 2048; ++b) {
                const Addr pc = 0x1000 + 4 * b;
                const bool majority = (mix64(b) & 1) != 0;
                const bool taken =
                    rng.chance(0.98) ? majority : !majority;
                correct += predictor->predict(pc) == taken;
                predictor->update(pc, taken);
                predictor->updateHistory(taken);
                ++total;
            }
        }
        return static_cast<double>(correct) /
               static_cast<double>(total);
    };
    EXPECT_GT(run("yags:1024"), run("gshare:1024") + 0.02);
}

TEST(YagsPolicy, SizingAccounting)
{
    Yags predictor(4096);
    EXPECT_LE(predictor.sizeBytes(), 4096u);
    EXPECT_GE(predictor.sizeBytes(), 3000u);
    EXPECT_GT(predictor.cacheEntries(), 0u);
}

TEST(EngineWarmup, WarmupTrainsButIsNotMeasured)
{
    MemoryTrace trace;
    for (int i = 0; i < 200; ++i)
        trace.append({0x1000, true, 1});

    auto cold = makePredictor(PredictorKind::Bimodal, 2048);
    SimOptions cold_options;
    cold_options.maxBranches = 100;
    const SimStats cold_stats = simulate(*cold, trace, cold_options);

    auto warm = makePredictor(PredictorKind::Bimodal, 2048);
    SimOptions warm_options;
    warm_options.maxBranches = 100;
    warm_options.warmupBranches = 50;
    const SimStats warm_stats = simulate(*warm, trace, warm_options);

    EXPECT_EQ(cold_stats.branches, 100u);
    EXPECT_EQ(warm_stats.branches, 100u);
    // Cold run pays the initial training mispredictions; the warmed
    // run does not.
    EXPECT_GT(cold_stats.mispredictions, 0u);
    EXPECT_EQ(warm_stats.mispredictions, 0u);
}

TEST(EngineWarmup, CollisionStatsExcludeWarmup)
{
    MemoryTrace trace;
    for (int i = 0; i < 100; ++i) {
        trace.append({0x1000, true, 1});
        trace.append({0x1000 + 4 * 8192, false, 1}); // aliases
    }
    auto predictor = makePredictor(PredictorKind::Bimodal, 2048);
    SimOptions options;
    options.warmupBranches = 100;
    options.maxBranches = 100;
    const SimStats stats = simulate(*predictor, trace, options);
    // Exactly the measured window's lookups are counted.
    EXPECT_EQ(stats.collisions.lookups, 100u);
}

} // namespace
} // namespace bpsim
