/**
 * @file
 * Artifact-cache format tests: key construction, replay/profile
 * round-trips through the mmap'd on-disk format, and a deterministic
 * corruption sweep proving every header or key byte is covered by the
 * checksum. The format is frozen at v1, so the surgical tests below
 * replicate the 64-byte header layout on purpose — a layout change
 * must bump the version and add a new suite, not edit this one.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "cache/artifact_cache.hh"
#include "support/bits.hh"
#include "support/error.hh"
#include "support/mmap_file.hh"
#include "trace/replay_buffer.hh"
#include "workload/specint.hh"

namespace bpsim
{
namespace
{

/** Replica of the frozen v1 on-disk header (see artifact_cache.cc). */
struct HeaderV1
{
    char magic[8];
    std::uint32_t version;
    std::uint32_t reserved;
    std::uint64_t keyBytes;
    std::uint64_t records;
    std::uint64_t extra;
    std::uint64_t payloadOffset;
    std::uint64_t fileBytes;
    std::uint64_t headerHash;
};
static_assert(sizeof(HeaderV1) == 64, "v1 header replica drifted");

std::string
freshDir(const std::string &name)
{
    const std::string dir = ::testing::TempDir() + name;
    std::filesystem::remove_all(dir);
    return dir;
}

std::vector<char>
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    return {std::istreambuf_iterator<char>(in),
            std::istreambuf_iterator<char>()};
}

void
writeFile(const std::string &path, const std::vector<char> &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size()));
    ASSERT_TRUE(out.good()) << path;
}

ProfileDb
sampleProfile()
{
    ProfileDb db;
    BranchProfile a;
    a.executed = 100;
    a.taken = 60;
    a.predicted = 100;
    a.correct = 88;
    a.collisions = 7;
    db.setEntry(0x400100, a);
    BranchProfile b;
    b.executed = 3;
    b.taken = 0;
    b.predicted = 3;
    b.correct = 3;
    db.setEntry(0x400200, b);
    return db;
}

TEST(ArtifactKeys, AreDeterministicAndDistinct)
{
    const std::string replay =
        replayArtifactKey("compress", 2000, 1, 120000);
    EXPECT_EQ(replay, "replay-v1|compress|2000|in1|120000");
    EXPECT_EQ(replay, replayArtifactKey("compress", 2000, 1, 120000));
    EXPECT_NE(replay, replayArtifactKey("compress", 2000, 1, 120001));
    EXPECT_NE(replay, replayArtifactKey("compress", 2001, 1, 120000));

    const std::string profile = profileArtifactKey(
        "compress", 2000, 1, 60000, "gshare:2048");
    EXPECT_EQ(profile,
              "profile-v1|compress|2000|in1|60000|gshare:2048");
    EXPECT_NE(profile, profileArtifactKey("compress", 2000, 1, 60000,
                                          "gshare:4096"));
}

TEST(ArtifactCacheTest, AbsentFileIsAMissNotAnError)
{
    ArtifactCache cache(freshDir("cache_miss"));
    const Result<ArtifactCache::ReplayLookup> replay =
        cache.loadReplay("replay-v1|nope|0|in0|1");
    ASSERT_TRUE(replay.ok());
    EXPECT_FALSE(replay.value().hit);

    const Result<ArtifactCache::ProfileLookup> profile =
        cache.loadProfile("profile-v1|nope|0|in0|1|gshare:1024");
    ASSERT_TRUE(profile.ok());
    EXPECT_FALSE(profile.value().hit);

    const ArtifactCacheStats stats = cache.stats();
    EXPECT_EQ(stats.replayMisses, 1u);
    EXPECT_EQ(stats.profileMisses, 1u);
    EXPECT_EQ(stats.corrupt, 0u);
}

TEST(ArtifactCacheTest, ReplayRoundTripIsBitIdentical)
{
    constexpr Count records = 5000;
    SyntheticProgram program =
        makeSpecProgram(SpecProgram::Compress, InputSet::Ref);
    const ReplayBuffer original =
        ReplayBuffer::materialize(program, records);
    ASSERT_EQ(original.size(), records);

    ArtifactCache cache(freshDir("cache_replay"));
    const std::string key =
        replayArtifactKey("compress", 2000, 1, records);
    ASSERT_TRUE(cache.storeReplay(key, original).ok());

    Result<ArtifactCache::ReplayLookup> loaded =
        cache.loadReplay(key);
    ASSERT_TRUE(loaded.ok());
    ASSERT_TRUE(loaded.value().hit);
    const ReplayBuffer &mapped = loaded.value().buffer;
    EXPECT_TRUE(mapped.mapped());
    ASSERT_EQ(mapped.size(), original.size());
    EXPECT_EQ(mapped.instructionCount(),
              original.instructionCount());
    for (Count i = 0; i < records; ++i) {
        BranchRecord a;
        BranchRecord b;
        original.get(i, a);
        mapped.get(i, b);
        ASSERT_EQ(a.pc, b.pc) << "record " << i;
        ASSERT_EQ(a.taken, b.taken) << "record " << i;
        ASSERT_EQ(a.instGap, b.instGap) << "record " << i;
    }

    const ArtifactCacheStats stats = cache.stats();
    EXPECT_EQ(stats.replayHits, 1u);
    EXPECT_EQ(stats.mappedBytes,
              records * ReplayBuffer::bytesPerBranch);
}

TEST(ArtifactCacheTest, MappedBufferOutlivesTheCache)
{
    constexpr Count records = 256;
    SyntheticProgram program =
        makeSpecProgram(SpecProgram::Go, InputSet::Ref);
    const ReplayBuffer original =
        ReplayBuffer::materialize(program, records);

    const std::string key = replayArtifactKey("go", 2000, 1, records);
    ReplayBuffer survivor;
    {
        ArtifactCache cache(freshDir("cache_lifetime"));
        ASSERT_TRUE(cache.storeReplay(key, original).ok());
        Result<ArtifactCache::ReplayLookup> loaded =
            cache.loadReplay(key);
        ASSERT_TRUE(loaded.ok() && loaded.value().hit);
        survivor = loaded.value().buffer;
    }
    // The aliasing shared_ptr keeps the mapping alive after the cache
    // object is gone.
    BranchRecord a;
    BranchRecord b;
    original.get(records - 1, a);
    survivor.get(records - 1, b);
    EXPECT_EQ(a.pc, b.pc);
    EXPECT_EQ(a.taken, b.taken);
}

TEST(ArtifactCacheTest, ProfileRoundTrip)
{
    ArtifactCache cache(freshDir("cache_profile"));
    const ProfileDb db = sampleProfile();
    const std::string key = profileArtifactKey("compress", 2000, 1,
                                               60000, "gshare:2048");
    ASSERT_TRUE(cache.storeProfile(key, db, 60000).ok());

    const Result<ArtifactCache::ProfileLookup> loaded =
        cache.loadProfile(key);
    ASSERT_TRUE(loaded.ok());
    ASSERT_TRUE(loaded.value().hit);
    EXPECT_EQ(loaded.value().simulatedBranches, 60000u);
    ASSERT_EQ(loaded.value().profile.size(), db.size());
    for (const auto &[pc, expected] : db.entries()) {
        const auto it = loaded.value().profile.entries().find(pc);
        ASSERT_NE(it, loaded.value().profile.entries().end());
        EXPECT_EQ(it->second.executed, expected.executed);
        EXPECT_EQ(it->second.taken, expected.taken);
        EXPECT_EQ(it->second.predicted, expected.predicted);
        EXPECT_EQ(it->second.correct, expected.correct);
        EXPECT_EQ(it->second.collisions, expected.collisions);
    }
}

TEST(ArtifactCacheTest, ZeroEntryProfileRoundTrips)
{
    ArtifactCache cache(freshDir("cache_profile_empty"));
    const std::string key = profileArtifactKey("compress", 2000, 1,
                                               1234, "bimodal:1024");
    ASSERT_TRUE(cache.storeProfile(key, ProfileDb(), 1234).ok());

    const Result<ArtifactCache::ProfileLookup> loaded =
        cache.loadProfile(key);
    ASSERT_TRUE(loaded.ok());
    ASSERT_TRUE(loaded.value().hit);
    EXPECT_EQ(loaded.value().profile.size(), 0u);
    EXPECT_EQ(loaded.value().simulatedBranches, 1234u);
}

TEST(ArtifactCacheTest, RacingWritersProduceIdenticalBytes)
{
    const std::string dir = freshDir("cache_racing");
    const ProfileDb db = sampleProfile();
    const std::string key = profileArtifactKey("compress", 2000, 1,
                                               777, "gshare:2048");

    ArtifactCache first(dir);
    ASSERT_TRUE(first.storeProfile(key, db, 777).ok());
    const std::vector<char> bytes_first =
        readFile(first.profilePath(key));

    // A second process writing the same key must produce the same
    // bytes, so the atomic-rename race is benign.
    ArtifactCache second(dir);
    ASSERT_TRUE(second.storeProfile(key, db, 777).ok());
    const std::vector<char> bytes_second =
        readFile(second.profilePath(key));
    EXPECT_EQ(bytes_first, bytes_second);
}

TEST(ArtifactCacheTest, TruncatedFilesAreStructuredErrors)
{
    ArtifactCache cache(freshDir("cache_truncate"));
    const ProfileDb db = sampleProfile();
    const std::string key = profileArtifactKey("compress", 2000, 1,
                                               500, "gshare:2048");
    ASSERT_TRUE(cache.storeProfile(key, db, 500).ok());
    const std::string path = cache.profilePath(key);
    const std::vector<char> intact = readFile(path);

    // Every truncation point must be rejected: shorter than the
    // header, header-only, mid-key and mid-payload.
    for (const std::size_t keep :
         {std::size_t{0}, std::size_t{17}, sizeof(HeaderV1) - 1,
          sizeof(HeaderV1), intact.size() / 2, intact.size() - 1}) {
        std::vector<char> cut(intact.begin(),
                              intact.begin() +
                                  static_cast<std::ptrdiff_t>(keep));
        writeFile(path, cut);
        const Result<ArtifactCache::ProfileLookup> loaded =
            cache.loadProfile(key);
        ASSERT_FALSE(loaded.ok()) << "kept " << keep << " bytes";
        EXPECT_EQ(loaded.error().code(), ErrorCode::IoFailure);
    }

    // An oversized file is equally corrupt.
    std::vector<char> padded = intact;
    padded.push_back('x');
    writeFile(path, padded);
    EXPECT_FALSE(cache.loadProfile(key).ok());

    // Restoring the original bytes restores the hit.
    writeFile(path, intact);
    const Result<ArtifactCache::ProfileLookup> healed =
        cache.loadProfile(key);
    ASSERT_TRUE(healed.ok());
    EXPECT_TRUE(healed.value().hit);
    EXPECT_GE(cache.stats().corrupt, 7u);
}

TEST(ArtifactCacheTest, EveryHeaderAndKeyByteFlipIsDetected)
{
    ArtifactCache cache(freshDir("cache_flip"));
    const ProfileDb db = sampleProfile();
    const std::string key = profileArtifactKey("compress", 2000, 1,
                                               999, "gshare:2048");
    ASSERT_TRUE(cache.storeProfile(key, db, 999).ok());
    const std::string path = cache.profilePath(key);
    const std::vector<char> intact = readFile(path);
    ASSERT_GE(intact.size(), sizeof(HeaderV1) + key.size());

    // Deterministic corruption sweep: flipping any single byte of the
    // header or the stored key must fail validation (magic, version,
    // sizes or the checksum); the load must never succeed on damaged
    // metadata.
    for (std::size_t i = 0; i < sizeof(HeaderV1) + key.size(); ++i) {
        std::vector<char> mutated = intact;
        mutated[i] = static_cast<char>(mutated[i] ^ 0x5a);
        writeFile(path, mutated);
        const Result<ArtifactCache::ProfileLookup> loaded =
            cache.loadProfile(key);
        ASSERT_FALSE(loaded.ok()) << "flipped byte " << i;
        EXPECT_EQ(loaded.error().code(), ErrorCode::IoFailure)
            << "flipped byte " << i;
    }
}

TEST(ArtifactCacheTest, VersionBumpIsRejectedEvenWithValidChecksum)
{
    ArtifactCache cache(freshDir("cache_version"));
    const ProfileDb db = sampleProfile();
    const std::string key = profileArtifactKey("compress", 2000, 1,
                                               42, "gshare:2048");
    ASSERT_TRUE(cache.storeProfile(key, db, 42).ok());
    const std::string path = cache.profilePath(key);
    std::vector<char> bytes = readFile(path);

    // Bump the version and re-sign the header so only the version
    // check can reject it — a future-format file must not be
    // misparsed by a v1 reader that happens to checksum it.
    HeaderV1 header;
    std::memcpy(&header, bytes.data(), sizeof(header));
    ASSERT_EQ(header.version, 1u);
    header.version = 2;
    header.headerHash = 0;
    std::string signed_bytes(reinterpret_cast<const char *>(&header),
                             sizeof(header));
    signed_bytes += key;
    header.headerHash = fnv1a64(signed_bytes);
    std::memcpy(bytes.data(), &header, sizeof(header));
    writeFile(path, bytes);

    const Result<ArtifactCache::ProfileLookup> loaded =
        cache.loadProfile(key);
    ASSERT_FALSE(loaded.ok());
    EXPECT_NE(loaded.error().message().find("version"),
              std::string::npos);
}

TEST(ArtifactCacheTest, KeyCollisionDegradesToAnError)
{
    ArtifactCache cache(freshDir("cache_collision"));
    const ProfileDb db = sampleProfile();
    const std::string key_a = profileArtifactKey(
        "compress", 2000, 1, 100, "gshare:2048");
    const std::string key_b = profileArtifactKey(
        "compress", 2000, 1, 100, "gshare:4096");
    ASSERT_TRUE(cache.storeProfile(key_a, db, 100).ok());

    // Simulate a file-name hash collision: key B's path holds key
    // A's artifact. The stored-key comparison must refuse it rather
    // than hand back the wrong data.
    std::filesystem::copy_file(cache.profilePath(key_a),
                               cache.profilePath(key_b));
    const Result<ArtifactCache::ProfileLookup> loaded =
        cache.loadProfile(key_b);
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.error().code(), ErrorCode::IoFailure);
}

TEST(MmapFileTest, OpenMapsBytesReadOnly)
{
    const std::string path =
        ::testing::TempDir() + "mmap_basic.bin";
    const std::vector<char> bytes = {'a', 'b', 'c', 'd', 'e'};
    writeFile(path, bytes);

    Result<MmapFile> mapped = MmapFile::openReadOnly(path);
    ASSERT_TRUE(mapped.ok());
    ASSERT_EQ(mapped.value().size(), bytes.size());
    EXPECT_EQ(std::memcmp(mapped.value().data(), bytes.data(),
                          bytes.size()),
              0);
    EXPECT_EQ(mapped.value().path(), path);

    // Move transfers ownership; the mapping stays valid.
    MmapFile moved = std::move(mapped.value());
    EXPECT_EQ(moved.size(), bytes.size());
    EXPECT_EQ(std::memcmp(moved.data(), bytes.data(), bytes.size()),
              0);
}

TEST(MmapFileTest, MissingFileIsAnIoFailure)
{
    Result<MmapFile> mapped = MmapFile::openReadOnly(
        ::testing::TempDir() + "mmap_does_not_exist.bin");
    ASSERT_FALSE(mapped.ok());
    EXPECT_EQ(mapped.error().code(), ErrorCode::IoFailure);
}

} // namespace
} // namespace bpsim
