/**
 * @file
 * Bit-identity contract of the devirtualized replay kernels
 * (core/engine simulateReplay): for every predictor kind, scheme and
 * shift policy the kernels must produce exactly the SimStats, profile
 * contents and hint counts of the virtual-dispatch path, and
 * predictors outside the visitor must fall back to it transparently.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "core/engine.hh"
#include "core/experiment.hh"
#include "predictor/factory.hh"
#include "trace/replay_buffer.hh"
#include "workload/specint.hh"

namespace bpsim
{
namespace
{

constexpr Count testProfileBranches = 60'000;
constexpr Count testEvalBranches = 120'000;

ExperimentConfig
fastConfig(PredictorKind kind, StaticScheme scheme)
{
    ExperimentConfig config;
    config.kind = kind;
    config.sizeBytes = 2048;
    config.scheme = scheme;
    config.profileBranches = testProfileBranches;
    config.evalBranches = testEvalBranches;
    return config;
}

void
expectSameStats(const SimStats &a, const SimStats &b)
{
    EXPECT_EQ(a.branches, b.branches);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.mispredictions, b.mispredictions);
    EXPECT_EQ(a.staticPredicted, b.staticPredicted);
    EXPECT_EQ(a.staticMispredictions, b.staticMispredictions);
    EXPECT_EQ(a.collisions.lookups, b.collisions.lookups);
    EXPECT_EQ(a.collisions.collisions, b.collisions.collisions);
    EXPECT_EQ(a.collisions.constructive, b.collisions.constructive);
    EXPECT_EQ(a.collisions.destructive, b.collisions.destructive);
}

void
expectSameProfile(const ProfileDb &a, const ProfileDb &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (const auto &[pc, profile] : a.entries()) {
        const BranchProfile *other = b.find(pc);
        ASSERT_NE(other, nullptr) << "pc " << std::hex << pc;
        EXPECT_EQ(profile.executed, other->executed);
        EXPECT_EQ(profile.taken, other->taken);
        EXPECT_EQ(profile.predicted, other->predicted);
        EXPECT_EQ(profile.correct, other->correct);
        EXPECT_EQ(profile.collisions, other->collisions);
    }
}

const ReplayBuffer &
testBuffer()
{
    static const ReplayBuffer buffer = [] {
        SyntheticProgram program =
            makeSpecProgram(SpecProgram::Go, InputSet::Ref);
        return ReplayBuffer::materialize(
            program,
            std::max(testProfileBranches, testEvalBranches));
    }();
    return buffer;
}

using KindScheme = std::tuple<PredictorKind, StaticScheme>;

class FastPathExperiment
    : public ::testing::TestWithParam<KindScheme>
{};

TEST_P(FastPathExperiment, KernelIdenticalToVirtualPath)
{
    const auto [kind, scheme] = GetParam();
    const ExperimentConfig config = fastConfig(kind, scheme);
    const ReplayBuffer &buffer = testBuffer();

    // Virtual path: the stream-based core only ever uses simulate().
    ReplayBuffer::Cursor profile_stream = buffer.cursor();
    ReplayBuffer::Cursor eval_stream = buffer.cursor();
    const ExperimentResult virtual_result =
        runExperimentStreams(profile_stream, eval_stream, config);

    bool used_fast = false;
    const ExperimentResult kernel_result = runExperimentReplay(
        &buffer, buffer, config, nullptr, &used_fast);

    EXPECT_TRUE(used_fast);
    expectSameStats(virtual_result.stats, kernel_result.stats);
    EXPECT_EQ(virtual_result.hintCount, kernel_result.hintCount);
    EXPECT_EQ(virtual_result.simulatedBranches,
              kernel_result.simulatedBranches);
}

INSTANTIATE_TEST_SUITE_P(
    AllKindsAndSchemes, FastPathExperiment,
    ::testing::Combine(
        ::testing::ValuesIn(allPredictorKinds()),
        ::testing::Values(StaticScheme::None, StaticScheme::Static95,
                          StaticScheme::StaticAcc)),
    [](const auto &info) {
        return predictorKindName(std::get<0>(info.param)) + "_" +
               staticSchemeName(std::get<1>(info.param));
    });

class FastPathProfile
    : public ::testing::TestWithParam<PredictorKind>
{};

TEST_P(FastPathProfile, ProfilePhaseIdenticalToVirtualPath)
{
    const ExperimentConfig config =
        fastConfig(GetParam(), StaticScheme::StaticAcc);
    const ReplayBuffer &buffer = testBuffer();

    ReplayBuffer::Cursor stream = buffer.cursor();
    const ProfilePhase virtual_phase =
        runProfilePhase(stream, config);

    bool used_fast = false;
    const ProfilePhase kernel_phase =
        runProfilePhaseReplay(buffer, config, &used_fast);

    EXPECT_TRUE(used_fast);
    EXPECT_EQ(virtual_phase.simulatedBranches,
              kernel_phase.simulatedBranches);
    expectSameProfile(virtual_phase.profile, kernel_phase.profile);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, FastPathProfile,
                         ::testing::ValuesIn(allPredictorKinds()),
                         [](const auto &info) {
                             return predictorKindName(info.param);
                         });

TEST(FastPathTest, ShiftPoliciesIdenticalToVirtualPath)
{
    // The combined kernel owns the history treatment of statically
    // predicted branches; every policy must match the wrapper.
    for (const auto shift :
         {ShiftPolicy::NoShift, ShiftPolicy::ShiftOutcome,
          ShiftPolicy::ShiftPrediction}) {
        ExperimentConfig config =
            fastConfig(PredictorKind::Ghist, StaticScheme::Static95);
        config.shift = shift;
        const ReplayBuffer &buffer = testBuffer();

        ReplayBuffer::Cursor profile_stream = buffer.cursor();
        ReplayBuffer::Cursor eval_stream = buffer.cursor();
        const ExperimentResult virtual_result =
            runExperimentStreams(profile_stream, eval_stream, config);

        bool used_fast = false;
        const ExperimentResult kernel_result = runExperimentReplay(
            &buffer, buffer, config, nullptr, &used_fast);

        EXPECT_TRUE(used_fast)
            << shiftPolicyName(shift);
        expectSameStats(virtual_result.stats, kernel_result.stats);
        EXPECT_EQ(virtual_result.hintCount, kernel_result.hintCount);
    }
}

TEST(FastPathTest, WarmupIdenticalToVirtualPath)
{
    // Warmup trains tables *and* collision tags before measurement;
    // the kernel schedule must leave the predictor in the same state.
    const ReplayBuffer &buffer = testBuffer();
    SimOptions options;
    options.warmupBranches = 20'000;
    options.maxBranches = 50'000;

    for (const auto kind : allPredictorKinds()) {
        auto virtual_predictor = makePredictor(kind, 2048);
        ReplayBuffer::Cursor cursor = buffer.cursor();
        const SimStats virtual_stats =
            simulate(*virtual_predictor, cursor, options);

        auto kernel_predictor = makePredictor(kind, 2048);
        bool used_fast = false;
        const SimStats kernel_stats = simulateReplay(
            *kernel_predictor, buffer, options, &used_fast);

        EXPECT_TRUE(used_fast) << predictorKindName(kind);
        expectSameStats(virtual_stats, kernel_stats);
    }
}

TEST(FastPathTest, EmptyHintCombinedStillUsesKernel)
{
    // The evaluation phase always wraps the dynamic predictor in a
    // CombinedPredictor even without hints; the dispatcher must see
    // through the empty wrapper rather than fall back.
    const ReplayBuffer &buffer = testBuffer();
    SimOptions options;
    options.maxBranches = testEvalBranches;

    CombinedPredictor virtual_combined(
        makePredictor(PredictorKind::Gshare, 2048), HintDb{});
    ReplayBuffer::Cursor cursor = buffer.cursor();
    const SimStats virtual_stats =
        simulate(virtual_combined, cursor, options);

    CombinedPredictor kernel_combined(
        makePredictor(PredictorKind::Gshare, 2048), HintDb{});
    bool used_fast = false;
    const SimStats kernel_stats = simulateReplay(
        kernel_combined, buffer, options, &used_fast);

    EXPECT_TRUE(used_fast);
    expectSameStats(virtual_stats, kernel_stats);
}

TEST(FastPathTest, UnknownPredictorFallsBackToVirtual)
{
    // Extension predictors are outside the visitor; simulateReplay
    // must transparently take the virtual path and still be correct.
    const ReplayBuffer &buffer = testBuffer();
    SimOptions options;
    options.maxBranches = testEvalBranches;

    auto virtual_predictor = makePredictor("yags:2048");
    ReplayBuffer::Cursor cursor = buffer.cursor();
    const SimStats virtual_stats =
        simulate(*virtual_predictor, cursor, options);

    auto replay_predictor = makePredictor("yags:2048");
    bool used_fast = true;
    const SimStats replay_stats = simulateReplay(
        *replay_predictor, buffer, options, &used_fast);

    EXPECT_FALSE(used_fast);
    expectSameStats(virtual_stats, replay_stats);
}

TEST(FastPathTest, CustomFactoryExperimentFallsBack)
{
    // A makeDynamic factory constructing a non-visitable type runs
    // the whole experiment on the virtual path, bit-identically.
    ExperimentConfig config =
        fastConfig(PredictorKind::Gshare, StaticScheme::Static95);
    config.makeDynamic = [] { return makePredictor("yags:2048"); };
    const ReplayBuffer &buffer = testBuffer();

    ReplayBuffer::Cursor profile_stream = buffer.cursor();
    ReplayBuffer::Cursor eval_stream = buffer.cursor();
    const ExperimentResult virtual_result =
        runExperimentStreams(profile_stream, eval_stream, config);

    bool used_fast = true;
    const ExperimentResult replay_result = runExperimentReplay(
        &buffer, buffer, config, nullptr, &used_fast);

    EXPECT_FALSE(used_fast);
    expectSameStats(virtual_result.stats, replay_result.stats);
    EXPECT_EQ(virtual_result.hintCount, replay_result.hintCount);
}

TEST(FastPathTest, FastPathOffMatchesKernelResults)
{
    const ReplayBuffer &buffer = testBuffer();
    SimOptions kernel_options;
    kernel_options.maxBranches = testEvalBranches;
    SimOptions virtual_options = kernel_options;
    virtual_options.fastPath = false;

    auto kernel_predictor = makePredictor(PredictorKind::BiMode, 2048);
    bool kernel_fast = false;
    const SimStats kernel_stats = simulateReplay(
        *kernel_predictor, buffer, kernel_options, &kernel_fast);
    EXPECT_TRUE(kernel_fast);

    auto virtual_predictor = makePredictor(PredictorKind::BiMode, 2048);
    bool virtual_fast = true;
    const SimStats virtual_stats = simulateReplay(
        *virtual_predictor, buffer, virtual_options, &virtual_fast);
    EXPECT_FALSE(virtual_fast);

    expectSameStats(kernel_stats, virtual_stats);
}

TEST(FastPathTest, UntrackedKernelSkipsCollisionBookkeeping)
{
    // trackCollisions=false compiles the tag bookkeeping out of the
    // kernels: predictions are unchanged, collision stats read zero.
    const ReplayBuffer &buffer = testBuffer();
    SimOptions tracked;
    tracked.maxBranches = testEvalBranches;
    SimOptions untracked = tracked;
    untracked.trackCollisions = false;

    for (const auto kind : allPredictorKinds()) {
        auto tracked_predictor = makePredictor(kind, 2048);
        const SimStats tracked_stats =
            simulateReplay(*tracked_predictor, buffer, tracked);

        auto untracked_predictor = makePredictor(kind, 2048);
        bool used_fast = false;
        const SimStats untracked_stats = simulateReplay(
            *untracked_predictor, buffer, untracked, &used_fast);

        EXPECT_TRUE(used_fast) << predictorKindName(kind);
        EXPECT_EQ(tracked_stats.branches, untracked_stats.branches);
        EXPECT_EQ(tracked_stats.instructions,
                  untracked_stats.instructions);
        EXPECT_EQ(tracked_stats.mispredictions,
                  untracked_stats.mispredictions);
        EXPECT_GT(tracked_stats.collisions.lookups, 0u);
        EXPECT_EQ(untracked_stats.collisions.lookups, 0u);
        EXPECT_EQ(untracked_stats.collisions.collisions, 0u);
        EXPECT_EQ(untracked_stats.collisions.constructive, 0u);
        EXPECT_EQ(untracked_stats.collisions.destructive, 0u);
    }
}

} // namespace
} // namespace bpsim
