/**
 * @file
 * Unit tests for the core module: SimStats math, the combined
 * static/dynamic predictor (hint override, no training of the dynamic
 * tables, shift policies), the simulation engine, and the two-phase
 * experiment driver.
 */

#include <gtest/gtest.h>

#include <memory>

#include "core/combined_predictor.hh"
#include "core/engine.hh"
#include "core/experiment.hh"
#include "predictor/bimodal.hh"
#include "predictor/gshare.hh"
#include "support/random.hh"
#include "trace/memory_trace.hh"
#include "workload/specint.hh"

namespace bpsim
{
namespace
{

TEST(SimStatsTest, MetricMath)
{
    SimStats stats;
    stats.branches = 1000;
    stats.instructions = 8000;
    stats.mispredictions = 40;
    EXPECT_DOUBLE_EQ(stats.mispKi(), 5.0);
    EXPECT_DOUBLE_EQ(stats.accuracyPercent(), 96.0);
    EXPECT_DOUBLE_EQ(stats.cbrsKi(), 125.0);

    SimStats better = stats;
    better.mispredictions = 30;
    EXPECT_DOUBLE_EQ(mispKiImprovement(stats, better), 25.0);
}

TEST(CombinedPredictorTest, HintOverridesDynamic)
{
    HintDb hints;
    hints.insert(0x100, true);
    CombinedPredictor combined(std::make_unique<Bimodal>(2048), hints);

    // The dynamic component would say not-taken from a cold table;
    // the hint forces taken.
    EXPECT_TRUE(combined.predict(0x100));
    EXPECT_TRUE(combined.lastWasStatic());
    EXPECT_FALSE(combined.predict(0x104));
    EXPECT_FALSE(combined.lastWasStatic());
}

TEST(CombinedPredictorTest, StaticBranchesDoNotTrainDynamic)
{
    HintDb hints;
    hints.insert(0x100, false);
    auto dynamic = std::make_unique<Bimodal>(2048);
    Bimodal *raw = dynamic.get();
    CombinedPredictor combined(std::move(dynamic), hints);

    // Hammer the hinted branch as taken: the bimodal entry must stay
    // cold because static branches never touch the tables.
    for (int i = 0; i < 100; ++i) {
        combined.predict(0x100);
        combined.update(0x100, true);
        combined.updateHistory(true);
    }
    EXPECT_FALSE(raw->predict(0x100));
    // And no lookups were recorded by the dynamic component.
    EXPECT_EQ(combined.collisionStats().lookups, 1u); // the probe above
}

TEST(CombinedPredictorTest, ShiftPolicies)
{
    // Use gshare so history matters. Train an alternating branch at
    // 0x200 whose predictability depends on seeing the hinted
    // branch's outcomes in the history register.
    HintDb hints;
    hints.insert(0x100, true);

    auto run = [&](ShiftPolicy policy) {
        CombinedPredictor combined(std::make_unique<Gshare>(64),
                                   hints, policy);
        // The hinted branch's outcome is random; 0x200 copies it.
        // The correlation is visible to gshare only if the hinted
        // branch's outcome is shifted into the history register.
        Rng rng(31);
        int correct = 0;
        int measured = 0;
        for (int i = 0; i < 4000; ++i) {
            const bool hinted_outcome = rng.chance(0.5);
            combined.predict(0x100);
            combined.update(0x100, hinted_outcome);
            combined.updateHistory(hinted_outcome);

            const bool prediction = combined.predict(0x200);
            combined.update(0x200, hinted_outcome);
            combined.updateHistory(hinted_outcome);
            if (i > 1000) {
                ++measured;
                correct += prediction == hinted_outcome;
            }
        }
        return static_cast<double>(correct) / measured;
    };

    const double no_shift = run(ShiftPolicy::NoShift);
    const double shift = run(ShiftPolicy::ShiftOutcome);
    // With the outcome shifted, gshare sees the correlation source
    // and nails the dependent branch; without it the dependent branch
    // alternates unpredictably at a fixed index.
    EXPECT_GT(shift, 0.95);
    EXPECT_LT(no_shift, 0.80);
}

TEST(CombinedPredictorTest, ShiftPredictionUsesHintDirection)
{
    HintDb hints;
    hints.insert(0x100, true);
    CombinedPredictor combined(std::make_unique<Gshare>(1024), hints,
                               ShiftPolicy::ShiftPrediction);
    // Must not crash and must not consult the dynamic predictor for
    // the hinted branch; behavioural equivalence with ShiftOutcome
    // when outcome == hint.
    combined.predict(0x100);
    combined.update(0x100, true);
    combined.updateHistory(true);
    EXPECT_EQ(combined.collisionStats().lookups, 0u);
}

TEST(CombinedPredictorTest, Accounting)
{
    HintDb hints;
    hints.insert(0x100, true);
    CombinedPredictor combined(std::make_unique<Bimodal>(2048), hints);
    EXPECT_EQ(combined.sizeBytes(), 2048u);
    EXPECT_EQ(combined.name(), "bimodal+static");
    EXPECT_EQ(combined.hintDb().size(), 1u);
    EXPECT_EQ(combined.policy(), ShiftPolicy::NoShift);
}

TEST(EngineTest, CountsAndProfile)
{
    MemoryTrace trace;
    for (int i = 0; i < 100; ++i) {
        trace.append({0x100, true, 10});
        trace.append({0x200, i % 2 == 0, 10});
    }
    Bimodal predictor(2048);
    ProfileDb profile;
    SimOptions options;
    options.profile = &profile;
    SimStats stats = simulate(predictor, trace, options);

    EXPECT_EQ(stats.branches, 200u);
    EXPECT_GT(stats.instructions, 1800u);
    EXPECT_EQ(profile.find(0x100)->executed, 100u);
    EXPECT_EQ(profile.find(0x200)->taken, 50u);
    EXPECT_EQ(profile.find(0x100)->predicted, 100u);
    // 0x100 is all-taken: bimodal mispredicts at most the warmup.
    EXPECT_GE(profile.find(0x100)->correct, 98u);
    // 0x200 alternates: bimodal is poor there.
    EXPECT_LT(profile.find(0x200)->accuracy(), 0.7);
}

TEST(EngineTest, MaxBranchesBound)
{
    MemoryTrace trace;
    for (int i = 0; i < 100; ++i)
        trace.append({0x100, true, 1});
    Bimodal predictor(2048);
    SimOptions options;
    options.maxBranches = 30;
    SimStats stats = simulate(predictor, trace, options);
    EXPECT_EQ(stats.branches, 30u);
}

TEST(EngineTest, StaticAttribution)
{
    MemoryTrace trace;
    for (int i = 0; i < 50; ++i) {
        trace.append({0x100, true, 1});  // hinted correctly
        trace.append({0x200, false, 1}); // hinted wrongly
        trace.append({0x300, true, 1});  // dynamic
    }
    HintDb hints;
    hints.insert(0x100, true);
    hints.insert(0x200, true);
    CombinedPredictor combined(std::make_unique<Bimodal>(2048), hints);
    SimStats stats = simulate(combined, trace);

    EXPECT_EQ(stats.staticPredicted, 100u);
    EXPECT_EQ(stats.staticMispredictions, 50u);
    EXPECT_NEAR(stats.staticShare(), 66.7, 0.1);
}

TEST(EngineTest, ProfileSkipsStaticPredictions)
{
    MemoryTrace trace;
    for (int i = 0; i < 50; ++i)
        trace.append({0x100, true, 1});
    HintDb hints;
    hints.insert(0x100, true);
    CombinedPredictor combined(std::make_unique<Bimodal>(2048), hints);
    ProfileDb profile;
    SimOptions options;
    options.profile = &profile;
    simulate(combined, trace, options);
    // Outcomes recorded, but no dynamic-prediction statistics.
    EXPECT_EQ(profile.find(0x100)->executed, 50u);
    EXPECT_EQ(profile.find(0x100)->predicted, 0u);
}

TEST(ExperimentTest, SelfTrainedStatic95HelpsGshareOnGcc)
{
    SyntheticProgram program =
        makeSpecProgram(SpecProgram::Gcc, InputSet::Ref);
    ExperimentConfig config;
    config.kind = PredictorKind::Gshare;
    config.sizeBytes = 4096;
    config.profileBranches = 300000;
    config.evalBranches = 600000;

    config.scheme = StaticScheme::None;
    ExperimentResult base = runExperiment(program, config);
    EXPECT_EQ(base.hintCount, 0u);
    EXPECT_EQ(base.stats.staticPredicted, 0u);

    config.scheme = StaticScheme::Static95;
    ExperimentResult with = runExperiment(program, config);
    EXPECT_GT(with.hintCount, 50u);
    EXPECT_GT(with.stats.staticPredicted, 0u);
    EXPECT_LT(with.stats.mispKi(), base.stats.mispKi());
}

TEST(ExperimentTest, RunBaselineMatchesNoneScheme)
{
    SyntheticProgram program =
        makeSpecProgram(SpecProgram::Compress, InputSet::Ref);
    ExperimentConfig config;
    config.kind = PredictorKind::Bimodal;
    config.sizeBytes = 2048;
    config.evalBranches = 200000;
    config.scheme = StaticScheme::None;
    const SimStats via_experiment =
        runExperiment(program, config).stats;
    const SimStats via_baseline = runBaseline(
        program, PredictorKind::Bimodal, 2048, 200000);
    EXPECT_EQ(via_experiment.mispredictions,
              via_baseline.mispredictions);
    EXPECT_EQ(via_experiment.branches, via_baseline.branches);
}

TEST(ExperimentTest, CrossTrainedUsesTrainInput)
{
    SyntheticProgram program =
        makeSpecProgram(SpecProgram::Perl, InputSet::Ref);
    ExperimentConfig config;
    config.kind = PredictorKind::Gshare;
    config.sizeBytes = 4096;
    config.scheme = StaticScheme::Static95;
    config.profileBranches = 300000;
    config.evalBranches = 300000;

    config.profileInput = InputSet::Ref;
    const double self = runExperiment(program, config).stats.mispKi();

    config.profileInput = InputSet::Train;
    const double naive = runExperiment(program, config).stats.mispKi();

    config.filterUnstable = true;
    const double filtered =
        runExperiment(program, config).stats.mispKi();

    // Perl's hot flipping branches: naive cross-training must be
    // clearly worse than self-training, and filtering must recover
    // most of the loss (the paper's Figure 13).
    EXPECT_GT(naive, self * 1.1);
    EXPECT_LT(filtered, naive);
}

TEST(ShiftPolicyNamesTest, AllNamed)
{
    EXPECT_EQ(shiftPolicyName(ShiftPolicy::NoShift), "noshift");
    EXPECT_EQ(shiftPolicyName(ShiftPolicy::ShiftOutcome), "shift");
    EXPECT_EQ(shiftPolicyName(ShiftPolicy::ShiftPrediction),
              "shiftpred");
}

} // namespace
} // namespace bpsim
