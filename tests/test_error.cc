/**
 * @file
 * Tests for the structured error subsystem and its consumers: Error /
 * Result semantics, atomic file writes, config validation, non-fatal
 * JSON parsing, and the sweep-checkpoint store with its deterministic
 * config fingerprints.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include <unistd.h>

#include "core/checkpoint.hh"
#include "core/experiment.hh"
#include "support/atomic_file.hh"
#include "support/error.hh"
#include "support/json.hh"
#include "workload/specint.hh"
#include "workload/synthetic_program.hh"

namespace bpsim
{
namespace
{

std::string
tempPath(const std::string &name)
{
    return ::testing::TempDir() + name;
}

std::string
readAll(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

TEST(ErrorTest, WireNamesCoverTheTaxonomy)
{
    EXPECT_STREQ(errorCodeName(ErrorCode::ConfigInvalid),
                 "config_invalid");
    EXPECT_STREQ(errorCodeName(ErrorCode::IoFailure), "io_failure");
    EXPECT_STREQ(errorCodeName(ErrorCode::ResourceExhausted),
                 "resource_exhausted");
    EXPECT_STREQ(errorCodeName(ErrorCode::CellFailed), "cell_failed");
    EXPECT_STREQ(errorCodeName(ErrorCode::Internal), "internal");
}

TEST(ErrorTest, DescribeRendersCodeMessageAndContextChain)
{
    Error error(ErrorCode::IoFailure, "cannot open 'x.json'");
    EXPECT_EQ(error.describe(), "[io_failure] cannot open 'x.json'");

    error.withContext("while loading checkpoint")
        .withContext("while resuming sweep");
    EXPECT_EQ(error.describe(),
              "[io_failure] cannot open 'x.json' (context: while "
              "loading checkpoint; while resuming sweep)");
}

TEST(ErrorTest, OnlyResourceExhaustedIsTransient)
{
    EXPECT_TRUE(
        Error(ErrorCode::ResourceExhausted, "oom").transient());
    EXPECT_FALSE(Error(ErrorCode::ConfigInvalid, "bad").transient());
    EXPECT_FALSE(Error(ErrorCode::IoFailure, "io").transient());
    EXPECT_FALSE(Error(ErrorCode::CellFailed, "cell").transient());
    EXPECT_FALSE(Error(ErrorCode::Internal, "bug").transient());
}

TEST(ErrorTest, RaiseThrowsErrorExceptionCarryingTheError)
{
    try {
        raise(Error(ErrorCode::CellFailed, "boom")
                  .withContext("in cell go/gshare"));
        FAIL() << "raise() returned";
    } catch (const ErrorException &caught) {
        EXPECT_EQ(caught.error().code(), ErrorCode::CellFailed);
        EXPECT_EQ(caught.error().message(), "boom");
        EXPECT_STREQ(caught.what(),
                     "[cell_failed] boom (context: in cell "
                     "go/gshare)");
    }
}

TEST(ResultTest, HoldsValueOrError)
{
    const Result<int> good(42);
    ASSERT_TRUE(good.ok());
    EXPECT_EQ(good.value(), 42);

    const Result<int> bad(Error(ErrorCode::Internal, "nope"));
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.error().message(), "nope");

    const Result<void> fine = okResult();
    EXPECT_TRUE(fine.ok());
    const Result<void> failed{Error(ErrorCode::IoFailure, "disk")};
    ASSERT_FALSE(failed.ok());
    EXPECT_EQ(failed.error().code(), ErrorCode::IoFailure);
}

TEST(ResultDeathTest, WrongSideAccessPanics)
{
    const Result<int> bad(Error(ErrorCode::Internal, "nope"));
    EXPECT_DEATH(static_cast<void>(bad.value()), "Result");
    const Result<int> good(7);
    EXPECT_DEATH(static_cast<void>(good.error()), "Result");
}

TEST(AtomicFileTest, WriteFileAtomicCreatesAndReplaces)
{
    const std::string path = tempPath("atomic_write_test.txt");
    std::remove(path.c_str());

    ASSERT_TRUE(writeFileAtomic(path, "first\n").ok());
    EXPECT_EQ(readAll(path), "first\n");

    ASSERT_TRUE(writeFileAtomic(path, "second\n").ok());
    EXPECT_EQ(readAll(path), "second\n");
    std::remove(path.c_str());
}

TEST(AtomicFileTest, UncommittedWriterLeavesTargetUntouched)
{
    const std::string path = tempPath("atomic_uncommitted_test.txt");
    std::remove(path.c_str());
    ASSERT_TRUE(writeFileAtomic(path, "original\n").ok());

    {
        AtomicFile writer(path);
        ASSERT_TRUE(writer.ok());
        std::fputs("half-written garbage", writer.stream());
        // No commit(): the destructor must discard the temp file.
    }
    EXPECT_EQ(readAll(path), "original\n");
    std::remove(path.c_str());
}

TEST(AtomicFileTest, CommitSurvivesInterruptedSignals)
{
    // The durability path (fsync file + parent dir, EINTR-retried
    // rename) must hold up under a steady stream of signals like the
    // service's SIGTERM drain delivers. SIGUSR1 with a no-op handler
    // interrupts syscalls without killing the process; every commit
    // must still land complete.
    struct sigaction action{};
    struct sigaction previous{};
    action.sa_handler = [](int) {};
    sigemptyset(&action.sa_mask);
    ASSERT_EQ(sigaction(SIGUSR1, &action, &previous), 0);

    const std::string path = tempPath("atomic_signal_test.txt");
    std::remove(path.c_str());

    std::atomic<bool> done{false};
    std::thread pepperer([&done] {
        while (!done.load()) {
            ::kill(::getpid(), SIGUSR1);
            std::this_thread::sleep_for(
                std::chrono::microseconds(50));
        }
    });
    for (int round = 0; round < 200; ++round) {
        const std::string body =
            "round " + std::to_string(round) + "\n";
        ASSERT_TRUE(writeFileAtomic(path, body).ok());
        ASSERT_EQ(readAll(path), body);
    }
    done.store(true);
    pepperer.join();
    sigaction(SIGUSR1, &previous, nullptr);
    std::remove(path.c_str());
}

TEST(AtomicFileTest, UnwritableDirectoryIsAStructuredError)
{
    AtomicFile writer("/nonexistent-bpsim-dir/out.json");
    EXPECT_FALSE(writer.ok());

    const Result<void> written =
        writeFileAtomic("/nonexistent-bpsim-dir/out.json", "x");
    ASSERT_FALSE(written.ok());
    EXPECT_EQ(written.error().code(), ErrorCode::IoFailure);
}

TEST(ValidationTest, ExperimentConfigRejectsBadTableSizes)
{
    ExperimentConfig config;
    config.evalBranches = 1000;

    for (const std::size_t bad : {std::size_t{0}, std::size_t{8},
                                  std::size_t{1000},
                                  std::size_t{4097}}) {
        config.sizeBytes = bad;
        const Result<void> valid = config.validate();
        ASSERT_FALSE(valid.ok()) << "sizeBytes=" << bad;
        EXPECT_EQ(valid.error().code(), ErrorCode::ConfigInvalid);
        EXPECT_NE(valid.error().message().find("power of two"),
                  std::string::npos);
    }
    config.sizeBytes = 2048;
    EXPECT_TRUE(config.validate().ok());
}

TEST(ValidationTest, ExperimentConfigRejectsZeroLengthStreams)
{
    ExperimentConfig config;
    config.sizeBytes = 2048;
    config.evalBranches = 0;
    const Result<void> no_eval = config.validate();
    ASSERT_FALSE(no_eval.ok());
    EXPECT_NE(no_eval.error().message().find("evalBranches"),
              std::string::npos);

    config.evalBranches = 1000;
    config.scheme = StaticScheme::Static95;
    config.profileBranches = 0;
    const Result<void> no_profile = config.validate();
    ASSERT_FALSE(no_profile.ok());
    EXPECT_NE(no_profile.error().message().find("profileBranches"),
              std::string::npos);

    // Without a static scheme there is no profiling phase to size.
    config.scheme = StaticScheme::None;
    EXPECT_TRUE(config.validate().ok());
}

TEST(ValidationTest, ExperimentConfigRejectsOutOfRangeTunables)
{
    ExperimentConfig config;
    config.sizeBytes = 2048;
    config.evalBranches = 1000;

    config.selection.cutoffBias = 1.5;
    EXPECT_FALSE(config.validate().ok());
    config.selection.cutoffBias = 0.95;

    config.filterUnstable = true;
    config.stabilityThreshold = -0.25;
    EXPECT_FALSE(config.validate().ok());
    config.stabilityThreshold = 0.05;
    EXPECT_TRUE(config.validate().ok());
}

TEST(ValidationTest, InvalidConfigFailsFastBeforeSimulating)
{
    ExperimentConfig config;
    config.sizeBytes = 1000; // not a power of two
    config.evalBranches = 1000;
    SyntheticProgram program =
        makeSpecProgram(SpecProgram::Compress, InputSet::Ref);
    EXPECT_THROW(runExperiment(program, config), ErrorException);
}

TEST(ValidationTest, ProgramConfigRejectsBadFractions)
{
    ProgramConfig config;
    config.fracHighBias = 1.25;
    const Result<void> valid = config.validate();
    ASSERT_FALSE(valid.ok());
    EXPECT_EQ(valid.error().code(), ErrorCode::ConfigInvalid);
    EXPECT_NE(valid.error().message().find("fracHighBias"),
              std::string::npos);

    config.fracHighBias = 0.45;
    EXPECT_TRUE(config.validate().ok());

    config.staticBranches = 2;
    EXPECT_FALSE(config.validate().ok());
}

TEST(JsonTest, TryParseReturnsStructuredErrorOnGarbage)
{
    const Result<JsonValue> bad =
        JsonValue::tryParse("{\"a\": 1,,}", "test.json");
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.error().code(), ErrorCode::IoFailure);
    EXPECT_NE(bad.error().message().find("test.json"),
              std::string::npos);

    const Result<JsonValue> good =
        JsonValue::tryParse("{\"a\": 1}", "test.json");
    ASSERT_TRUE(good.ok());
    EXPECT_DOUBLE_EQ(good.value().at("a").asNumber(), 1.0);
}

/** A fingerprint-friendly mini program (cheap to build). */
SyntheticProgram
fingerprintProgram(std::uint64_t seed = 0x5eed)
{
    ProgramConfig config;
    config.name = "fp";
    config.staticBranches = 40;
    config.seed = seed;
    return buildProgram(config, InputSet::Ref);
}

ExperimentConfig
fingerprintConfig()
{
    ExperimentConfig config;
    config.kind = PredictorKind::Gshare;
    config.sizeBytes = 2048;
    config.scheme = StaticScheme::Static95;
    config.profileBranches = 10'000;
    config.evalBranches = 20'000;
    return config;
}

TEST(CheckpointTest, FingerprintIsDeterministicAndDiscriminating)
{
    const SyntheticProgram program = fingerprintProgram();
    const ExperimentConfig config = fingerprintConfig();

    const std::string base = cellFingerprint(program, config);
    ASSERT_FALSE(base.empty());
    EXPECT_EQ(base.rfind("v1|", 0), 0u);
    EXPECT_EQ(cellFingerprint(program, config), base);

    // Every result-affecting knob must move the fingerprint.
    ExperimentConfig changed = config;
    changed.sizeBytes = 4096;
    EXPECT_NE(cellFingerprint(program, changed), base);

    changed = config;
    changed.scheme = StaticScheme::StaticAcc;
    EXPECT_NE(cellFingerprint(program, changed), base);

    changed = config;
    changed.evalBranches += 1;
    EXPECT_NE(cellFingerprint(program, changed), base);

    changed = config;
    changed.selection.cutoffBias = 0.9;
    EXPECT_NE(cellFingerprint(program, changed), base);

    const SyntheticProgram other = fingerprintProgram(0xbeef);
    EXPECT_NE(cellFingerprint(other, config), base);
}

TEST(CheckpointTest, UnkeyedDynamicFactoryIsUnfingerprintable)
{
    const SyntheticProgram program = fingerprintProgram();
    ExperimentConfig config = fingerprintConfig();
    config.makeDynamic = [] {
        return std::unique_ptr<BranchPredictor>();
    };
    EXPECT_EQ(cellFingerprint(program, config), "");

    config.dynamicKey = "custom-v1";
    EXPECT_NE(cellFingerprint(program, config), "");
}

CheckpointRecord
sampleRecord(const std::string &fingerprint, Count branches)
{
    CheckpointRecord record;
    record.fingerprint = fingerprint;
    record.label = "cell/" + fingerprint;
    record.result.stats.branches = branches;
    record.result.stats.instructions = branches * 7;
    record.result.stats.mispredictions = branches / 10;
    record.result.stats.collisions.lookups = branches;
    record.result.stats.collisions.collisions = branches / 4;
    record.result.stats.collisions.constructive = branches / 16;
    record.result.stats.collisions.destructive = branches / 8;
    record.result.hintCount = 12;
    record.result.simulatedBranches = branches * 2;
    record.usedKernel = true;
    record.phaseBranches = branches / 2;
    return record;
}

TEST(CheckpointTest, RecordAndLoadRoundTrip)
{
    const std::string path = tempPath("checkpoint_roundtrip.jsonl");
    std::remove(path.c_str());

    {
        SweepCheckpoint checkpoint(path);
        ASSERT_TRUE(checkpoint.load().ok()); // missing file == empty
        EXPECT_EQ(checkpoint.size(), 0u);
        ASSERT_TRUE(
            checkpoint.record(sampleRecord("v1|a", 1000)).ok());
        ASSERT_TRUE(
            checkpoint.record(sampleRecord("v1|b", 2000)).ok());
        // Re-recording a fingerprint replaces, never duplicates.
        ASSERT_TRUE(
            checkpoint.record(sampleRecord("v1|a", 3000)).ok());
        EXPECT_EQ(checkpoint.size(), 2u);
    }

    SweepCheckpoint reloaded(path);
    ASSERT_TRUE(reloaded.load().ok());
    EXPECT_EQ(reloaded.size(), 2u);

    const CheckpointRecord *a = reloaded.find("v1|a");
    ASSERT_NE(a, nullptr);
    EXPECT_EQ(a->result.stats.branches, 3000u);
    const CheckpointRecord expected = sampleRecord("v1|b", 2000);
    const CheckpointRecord *b = reloaded.find("v1|b");
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(b->label, expected.label);
    EXPECT_EQ(b->result.stats.branches,
              expected.result.stats.branches);
    EXPECT_EQ(b->result.stats.instructions,
              expected.result.stats.instructions);
    EXPECT_EQ(b->result.stats.mispredictions,
              expected.result.stats.mispredictions);
    EXPECT_EQ(b->result.stats.collisions.lookups,
              expected.result.stats.collisions.lookups);
    EXPECT_EQ(b->result.stats.collisions.collisions,
              expected.result.stats.collisions.collisions);
    EXPECT_EQ(b->result.stats.collisions.constructive,
              expected.result.stats.collisions.constructive);
    EXPECT_EQ(b->result.stats.collisions.destructive,
              expected.result.stats.collisions.destructive);
    EXPECT_EQ(b->result.hintCount, expected.result.hintCount);
    EXPECT_EQ(b->result.simulatedBranches,
              expected.result.simulatedBranches);
    EXPECT_EQ(b->usedKernel, expected.usedKernel);
    EXPECT_EQ(b->phaseBranches, expected.phaseBranches);

    EXPECT_EQ(reloaded.find("v1|missing"), nullptr);
    EXPECT_EQ(reloaded.find(""), nullptr);
    std::remove(path.c_str());
}

TEST(CheckpointTest, CorruptLinesAreSkippedNotFatal)
{
    const std::string path = tempPath("checkpoint_corrupt.jsonl");
    {
        SweepCheckpoint checkpoint(path);
        ASSERT_TRUE(
            checkpoint.record(sampleRecord("v1|keep", 500)).ok());
    }
    {
        std::ofstream out(path, std::ios::app);
        out << "this is not json\n";
        out << "{\"schema\": \"other-schema\", \"x\": 1}\n";
    }

    SweepCheckpoint reloaded(path);
    ASSERT_TRUE(reloaded.load().ok());
    EXPECT_EQ(reloaded.size(), 1u);
    EXPECT_NE(reloaded.find("v1|keep"), nullptr);
    std::remove(path.c_str());
}

TEST(CheckpointTest, EmptyFingerprintIsRejected)
{
    const std::string path = tempPath("checkpoint_reject.jsonl");
    std::remove(path.c_str());
    SweepCheckpoint checkpoint(path);
    const Result<void> recorded =
        checkpoint.record(sampleRecord("", 100));
    ASSERT_FALSE(recorded.ok());
    EXPECT_EQ(recorded.error().code(), ErrorCode::Internal);
    EXPECT_EQ(checkpoint.size(), 0u);
}

} // namespace
} // namespace bpsim
