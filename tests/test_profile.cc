/**
 * @file
 * Unit tests for the profile module: per-branch records, database
 * operations, serialisation, merging, cross-input comparison and the
 * §5.1 stability filter.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "profile/profile_db.hh"
#include "trace/memory_trace.hh"

namespace bpsim
{
namespace
{

std::string
tempPath(const std::string &tag)
{
    return testing::TempDir() + "bpsim_" + tag + "_" +
           std::to_string(::getpid()) + ".profile";
}

TEST(BranchProfileTest, BiasAndMajority)
{
    BranchProfile profile;
    profile.executed = 100;
    profile.taken = 80;
    EXPECT_DOUBLE_EQ(profile.takenRate(), 0.8);
    EXPECT_DOUBLE_EQ(profile.bias(), 0.8);
    EXPECT_TRUE(profile.majorityTaken());

    profile.taken = 20;
    EXPECT_DOUBLE_EQ(profile.bias(), 0.8);
    EXPECT_FALSE(profile.majorityTaken());

    BranchProfile empty;
    EXPECT_DOUBLE_EQ(empty.bias(), 1.0); // never executed: 1 - 0
    EXPECT_DOUBLE_EQ(empty.accuracy(), 0.0);
}

TEST(BranchProfileTest, AccuracyAndMerge)
{
    BranchProfile a;
    a.executed = 10;
    a.taken = 5;
    a.predicted = 10;
    a.correct = 7;
    BranchProfile b;
    b.executed = 30;
    b.taken = 15;
    b.predicted = 30;
    b.correct = 29;
    a += b;
    EXPECT_EQ(a.executed, 40u);
    EXPECT_DOUBLE_EQ(a.accuracy(), 36.0 / 40.0);
}

TEST(ProfileDbTest, RecordingAndLookup)
{
    ProfileDb db;
    db.recordOutcome(0x100, true);
    db.recordOutcome(0x100, true);
    db.recordOutcome(0x100, false);
    db.recordPrediction(0x100, true);
    db.recordPrediction(0x100, false);

    const BranchProfile *profile = db.find(0x100);
    ASSERT_NE(profile, nullptr);
    EXPECT_EQ(profile->executed, 3u);
    EXPECT_EQ(profile->taken, 2u);
    EXPECT_EQ(profile->predicted, 2u);
    EXPECT_EQ(profile->correct, 1u);
    EXPECT_EQ(db.find(0x200), nullptr);
    EXPECT_EQ(db.totalExecuted(), 3u);
}

TEST(ProfileDbTest, ExecutedAboveBias)
{
    ProfileDb db;
    for (int i = 0; i < 99; ++i)
        db.recordOutcome(0x100, true); // bias 1.0, 99 execs
    for (int i = 0; i < 100; ++i)
        db.recordOutcome(0x200, i % 2 == 0); // bias 0.5, 100 execs
    EXPECT_EQ(db.executedAboveBias(0.95), 99u);
    EXPECT_EQ(db.executedAboveBias(0.4), 199u);
}

TEST(ProfileDbTest, SaveLoadRoundTrip)
{
    ProfileDb db;
    for (int b = 0; b < 50; ++b) {
        const Addr pc = 0x1000 + 4 * b;
        for (int i = 0; i < b + 1; ++i)
            db.recordOutcome(pc, i % 3 == 0);
        db.recordPrediction(pc, b % 2 == 0);
    }
    const std::string path = tempPath("roundtrip");
    db.save(path);
    ProfileDb loaded = ProfileDb::load(path);
    ASSERT_EQ(loaded.size(), db.size());
    for (const auto &[pc, profile] : db.entries()) {
        const BranchProfile *other = loaded.find(pc);
        ASSERT_NE(other, nullptr);
        EXPECT_EQ(other->executed, profile.executed);
        EXPECT_EQ(other->taken, profile.taken);
        EXPECT_EQ(other->predicted, profile.predicted);
        EXPECT_EQ(other->correct, profile.correct);
    }
    std::remove(path.c_str());
}

TEST(ProfileDbTest, MergeAddAccumulates)
{
    ProfileDb a;
    a.recordOutcome(0x100, true);
    ProfileDb b;
    b.recordOutcome(0x100, false);
    b.recordOutcome(0x200, true);
    a.mergeAdd(b);
    EXPECT_EQ(a.size(), 2u);
    EXPECT_EQ(a.find(0x100)->executed, 2u);
    EXPECT_EQ(a.find(0x100)->taken, 1u);
}

TEST(ProfileDbTest, CollectFromStream)
{
    MemoryTrace trace;
    for (int i = 0; i < 30; ++i)
        trace.append({0x100, i % 2 == 0, 5});
    ProfileDb db = ProfileDb::collect(trace, 20);
    EXPECT_EQ(db.find(0x100)->executed, 20u);
    EXPECT_EQ(db.find(0x100)->taken, 10u);
}

/** Build a db with one branch at the given taken rate. */
void
addBranch(ProfileDb &db, Addr pc, Count executed, double taken_rate)
{
    const Count taken =
        static_cast<Count>(taken_rate * static_cast<double>(executed));
    for (Count i = 0; i < executed; ++i)
        db.recordOutcome(pc, i < taken);
}

TEST(CompareProfilesTest, CoverageFlipAndDrift)
{
    ProfileDb train;
    ProfileDb ref;
    // Branch A: stable (bias 0.9 in both).
    addBranch(train, 0xa0, 100, 0.9);
    addBranch(ref, 0xa0, 200, 0.9);
    // Branch B: majority flip (0.8 -> 0.2).
    addBranch(train, 0xb0, 100, 0.8);
    addBranch(ref, 0xb0, 100, 0.2);
    // Branch C: only in ref (coverage hole).
    addBranch(ref, 0xc0, 100, 0.5);
    // Branch D: only in train (irrelevant to ref-weighted stats).
    addBranch(train, 0xd0, 100, 0.5);

    const CrossInputStats stats = compareProfiles(train, ref);
    // 2 of 3 ref branches seen with train.
    EXPECT_NEAR(stats.seenWithTrainStatic, 66.7, 0.1);
    // 300 of 400 ref executions covered.
    EXPECT_NEAR(stats.seenWithTrainDynamic, 75.0, 0.1);
    // 1 of the 2 common branches flips.
    EXPECT_NEAR(stats.majorityFlipStatic, 50.0, 0.1);
    // A moved by 0 (<5%); B by 0.6 (>50%).
    EXPECT_NEAR(stats.biasChangeUnder5Static, 50.0, 0.1);
    EXPECT_NEAR(stats.biasChangeOver50Static, 50.0, 0.1);
}

TEST(StableSubsetTest, DropsUnstableAndUnseen)
{
    ProfileDb train;
    ProfileDb ref;
    addBranch(train, 0xa0, 100, 0.9); // stable
    addBranch(ref, 0xa0, 100, 0.92);
    addBranch(train, 0xb0, 100, 0.8); // flips
    addBranch(ref, 0xb0, 100, 0.2);
    addBranch(train, 0xc0, 100, 0.7); // not in ref

    ProfileDb filtered = stableSubset(train, ref, 0.05);
    EXPECT_EQ(filtered.size(), 1u);
    EXPECT_NE(filtered.find(0xa0), nullptr);
    EXPECT_EQ(filtered.find(0xb0), nullptr);
    EXPECT_EQ(filtered.find(0xc0), nullptr);
    // The surviving entry keeps the *train* counts.
    EXPECT_EQ(filtered.find(0xa0)->taken, 90u);
}

} // namespace
} // namespace bpsim
