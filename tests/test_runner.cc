/**
 * @file
 * Tests for the replay buffer and the parallel experiment-matrix
 * runner: replayed streams must be byte-identical to regenerated
 * ones, and matrix results must not depend on the thread count.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <vector>

#include "core/runner.hh"
#include "trace/memory_trace.hh"
#include "trace/replay_buffer.hh"
#include "workload/specint.hh"

namespace bpsim
{
namespace
{

/** Small phase budgets keep the whole file fast. */
constexpr Count testProfileBranches = 60'000;
constexpr Count testEvalBranches = 120'000;

ExperimentConfig
testConfig(PredictorKind kind, StaticScheme scheme)
{
    ExperimentConfig config;
    config.kind = kind;
    config.sizeBytes = 2048;
    config.scheme = scheme;
    config.profileBranches = testProfileBranches;
    config.evalBranches = testEvalBranches;
    return config;
}

RunnerOptions
threadOptions(unsigned threads)
{
    RunnerOptions options;
    options.threads = threads;
    return options;
}

void
expectSameStats(const SimStats &a, const SimStats &b)
{
    EXPECT_EQ(a.branches, b.branches);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.mispredictions, b.mispredictions);
    EXPECT_EQ(a.staticPredicted, b.staticPredicted);
    EXPECT_EQ(a.staticMispredictions, b.staticMispredictions);
    EXPECT_EQ(a.collisions.lookups, b.collisions.lookups);
    EXPECT_EQ(a.collisions.collisions, b.collisions.collisions);
    EXPECT_EQ(a.collisions.constructive, b.collisions.constructive);
    EXPECT_EQ(a.collisions.destructive, b.collisions.destructive);
}

TEST(ReplayBufferTest, RoundTripsRecords)
{
    MemoryTrace trace;
    trace.append({0x100, true, 7});
    trace.append({0x200, false, 1});
    trace.append({0x300, true, 0x7fffffff});
    // Drain the trace first so materialize()'s reset is exercised.
    BranchRecord sink;
    while (trace.next(sink)) {
    }

    const ReplayBuffer buffer = ReplayBuffer::materialize(trace, 100);
    EXPECT_EQ(buffer.size(), 3u);
    EXPECT_EQ(buffer.instructionCount(),
              Count{7} + 1 + 0x7fffffff);
    EXPECT_EQ(buffer.memoryBytes(),
              3 * ReplayBuffer::bytesPerBranch);

    ReplayBuffer::Cursor cursor = buffer.cursor();
    BranchRecord record;
    ASSERT_TRUE(cursor.next(record));
    EXPECT_EQ(record, (BranchRecord{0x100, true, 7}));
    ASSERT_TRUE(cursor.next(record));
    EXPECT_EQ(record, (BranchRecord{0x200, false, 1}));
    ASSERT_TRUE(cursor.next(record));
    EXPECT_EQ(record, (BranchRecord{0x300, true, 0x7fffffff}));
    EXPECT_FALSE(cursor.next(record));

    cursor.reset();
    ASSERT_TRUE(cursor.next(record));
    EXPECT_EQ(record.pc, 0x100u);
}

TEST(ReplayBufferTest, LimitBoundsCapture)
{
    MemoryTrace trace;
    for (int i = 0; i < 50; ++i)
        trace.append({0x100, true, 1});
    const ReplayBuffer buffer = ReplayBuffer::materialize(trace, 20);
    EXPECT_EQ(buffer.size(), 20u);
}

TEST(ReplayBufferTest, MatchesRegeneratedProgramStream)
{
    for (const auto id : allSpecPrograms()) {
        SyntheticProgram program = makeSpecProgram(id, InputSet::Ref);
        const ReplayBuffer buffer =
            ReplayBuffer::materialize(program, 50'000);
        ASSERT_EQ(buffer.size(), 50'000u);

        program.reset();
        ReplayBuffer::Cursor cursor = buffer.cursor();
        BranchRecord live;
        BranchRecord replayed;
        for (Count i = 0; i < buffer.size(); ++i) {
            ASSERT_TRUE(program.next(live));
            ASSERT_TRUE(cursor.next(replayed));
            ASSERT_EQ(live, replayed)
                << specProgramName(id) << " record " << i;
        }
    }
}

TEST(RunnerTest, ReplayedExperimentIdenticalToRegenerated)
{
    // The replay path must produce byte-identical SimStats for every
    // SPEC program, including a profiling phase (Static95 exercises
    // selection) and the dynamic baseline.
    for (const auto id : allSpecPrograms()) {
        for (const auto scheme :
             {StaticScheme::None, StaticScheme::Static95}) {
            const ExperimentConfig config =
                testConfig(PredictorKind::Gshare, scheme);

            SyntheticProgram serial =
                makeSpecProgram(id, InputSet::Ref);
            const ExperimentResult regenerated =
                runExperiment(serial, config);

            SyntheticProgram source =
                makeSpecProgram(id, InputSet::Ref);
            const ReplayBuffer buffer = ReplayBuffer::materialize(
                source, std::max(config.profileBranches,
                                 config.evalBranches));
            ReplayBuffer::Cursor profile_stream = buffer.cursor();
            ReplayBuffer::Cursor eval_stream = buffer.cursor();
            const ExperimentResult replayed = runExperimentStreams(
                profile_stream, eval_stream, config);

            expectSameStats(regenerated.stats, replayed.stats);
            EXPECT_EQ(regenerated.hintCount, replayed.hintCount);
        }
    }
}

TEST(RunnerTest, CrossInputFilterIdenticalToRegenerated)
{
    // The stability-filter path reads the eval-input buffer twice
    // (bias profile + evaluation); it must match the serial path too.
    ExperimentConfig config =
        testConfig(PredictorKind::Gshare, StaticScheme::Static95);
    config.profileInput = InputSet::Train;
    config.filterUnstable = true;

    SyntheticProgram serial =
        makeSpecProgram(SpecProgram::Perl, InputSet::Ref);
    const ExperimentResult regenerated =
        runExperiment(serial, config);

    ExperimentRunner runner(threadOptions(1));
    const std::size_t program = runner.addProgram(
        makeSpecProgram(SpecProgram::Perl, InputSet::Ref));
    runner.addCell(program, config);
    const MatrixResult result = runner.run();

    expectSameStats(regenerated.stats,
                    result.cells[0].result.stats);
    EXPECT_EQ(regenerated.hintCount, result.cells[0].result.hintCount);
}

/** The thread-count/cache test matrix: 2 programs x 2 kinds x
 * {none, static_95, static_acc} = 12 cells, 8 with a profiling
 * phase sharing 4 unique profile runs. */
MatrixResult
runTestMatrix(unsigned threads, bool profile_cache)
{
    RunnerOptions options;
    options.threads = threads;
    options.profileCache = profile_cache;
    ExperimentRunner runner(options);
    for (const auto id : {SpecProgram::Go, SpecProgram::Compress}) {
        const std::size_t program =
            runner.addProgram(makeSpecProgram(id, InputSet::Ref));
        for (const auto kind :
             {PredictorKind::Gshare, PredictorKind::Bimodal}) {
            for (const auto scheme :
                 {StaticScheme::None, StaticScheme::Static95,
                  StaticScheme::StaticAcc}) {
                runner.addCell(program, testConfig(kind, scheme));
            }
        }
    }
    return runner.run();
}

TEST(RunnerTest, ResultsIdenticalAtAnyThreadCount)
{
    const MatrixResult one = runTestMatrix(1, true);
    const MatrixResult two = runTestMatrix(2, true);
    const MatrixResult eight = runTestMatrix(8, true);
    EXPECT_EQ(one.threads, 1u);
    EXPECT_EQ(two.threads, 2u);
    EXPECT_EQ(eight.threads, 8u);
    ASSERT_EQ(one.cells.size(), 12u);
    ASSERT_EQ(two.cells.size(), one.cells.size());
    ASSERT_EQ(eight.cells.size(), one.cells.size());

    for (std::size_t i = 0; i < one.cells.size(); ++i) {
        expectSameStats(one.cells[i].result.stats,
                        two.cells[i].result.stats);
        expectSameStats(one.cells[i].result.stats,
                        eight.cells[i].result.stats);
        EXPECT_EQ(one.cells[i].result.hintCount,
                  two.cells[i].result.hintCount);
        EXPECT_EQ(one.cells[i].result.hintCount,
                  eight.cells[i].result.hintCount);
        EXPECT_EQ(one.cells[i].profileCached,
                  two.cells[i].profileCached);
        EXPECT_EQ(one.cells[i].usedKernel, eight.cells[i].usedKernel);
    }

    // Cache accounting is a function of the matrix, not the pool: 4
    // unique (program, kind) profile runs serve the 8 scheme cells.
    for (const MatrixResult *result : {&one, &two, &eight}) {
        EXPECT_EQ(result->profileCacheMisses, 4u);
        EXPECT_EQ(result->profileCacheHits, 4u);
        EXPECT_EQ(result->kernelCells, result->cells.size());
        EXPECT_EQ(result->totalBranches, one.totalBranches);
        EXPECT_EQ(result->actualBranches, one.actualBranches);
        EXPECT_LT(result->actualBranches, result->totalBranches);
    }
}

TEST(RunnerTest, ProfileCacheOffIsBitIdentical)
{
    const MatrixResult cached = runTestMatrix(2, true);
    const MatrixResult uncached = runTestMatrix(2, false);
    ASSERT_EQ(cached.cells.size(), uncached.cells.size());

    EXPECT_EQ(uncached.profileCacheHits, 0u);
    EXPECT_EQ(uncached.profileCacheMisses, 0u);
    EXPECT_EQ(uncached.totalBranches, cached.totalBranches);
    // Without sharing, every scheme cell re-runs its own profile.
    EXPECT_EQ(uncached.actualBranches, uncached.totalBranches);

    for (std::size_t i = 0; i < cached.cells.size(); ++i) {
        expectSameStats(cached.cells[i].result.stats,
                        uncached.cells[i].result.stats);
        EXPECT_EQ(cached.cells[i].result.hintCount,
                  uncached.cells[i].result.hintCount);
        EXPECT_EQ(cached.cells[i].result.simulatedBranches,
                  uncached.cells[i].result.simulatedBranches);
        EXPECT_FALSE(uncached.cells[i].profileCached);
    }
}

TEST(RunnerTest, CellMetadataAndTiming)
{
    ExperimentRunner runner(threadOptions(2));
    const std::size_t program = runner.addProgram(
        makeSpecProgram(SpecProgram::Compress, InputSet::Ref));
    runner.addCell(program, testConfig(PredictorKind::Gshare,
                                       StaticScheme::Static95));
    const MatrixResult result = runner.run();

    EXPECT_EQ(runner.cell(0).label,
              "compress/gshare:2048/static_95");
    EXPECT_GT(result.cells[0].result.simulatedBranches,
              testEvalBranches);
    EXPECT_GT(result.cells[0].wallSeconds, 0.0);
    EXPECT_GT(result.totalBranches, 0u);
    EXPECT_GT(result.replayBytes, 0u);
    EXPECT_GE(result.wallSeconds, result.runSeconds);
}

TEST(TaskPoolTest, RunsEveryTaskExactlyOnce)
{
    TaskPool pool(4);
    EXPECT_EQ(pool.threadCount(), 4u);

    constexpr std::size_t n = 100;
    std::vector<std::atomic<int>> hits(n);
    pool.parallelFor(n, [&](std::size_t i) {
        hits[i].fetch_add(1);
    });
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "task " << i;
}

TEST(ThreadCountTest, ResolutionOrder)
{
    EXPECT_EQ(resolveThreadCount(3), 3u);

    ASSERT_EQ(setenv("BPSIM_THREADS", "5", 1), 0);
    EXPECT_EQ(resolveThreadCount(0), 5u);
    EXPECT_EQ(resolveThreadCount(2), 2u);
    ASSERT_EQ(unsetenv("BPSIM_THREADS"), 0);

    EXPECT_GE(resolveThreadCount(0), 1u);
}

TEST(ThreadCountTest, GarbageEnvFallsBackToHardware)
{
    // A bad shell export must degrade (warning + hardware fallback),
    // never kill the run or silently misbehave.
    const unsigned fallback = resolveThreadCount(0);
    for (const char *garbage : {"banana", "-4", "0", "", "8x", "1e3"}) {
        ASSERT_EQ(setenv("BPSIM_THREADS", garbage, 1), 0);
        EXPECT_EQ(resolveThreadCount(0), fallback)
            << "BPSIM_THREADS='" << garbage << "'";
    }
    ASSERT_EQ(unsetenv("BPSIM_THREADS"), 0);
}

TEST(ThreadCountTest, AbsurdValuesAreClamped)
{
    ASSERT_EQ(setenv("BPSIM_THREADS", "100000", 1), 0);
    EXPECT_EQ(resolveThreadCount(0), maxResolvedThreads);
    ASSERT_EQ(unsetenv("BPSIM_THREADS"), 0);

    EXPECT_EQ(resolveThreadCount(maxResolvedThreads + 1),
              maxResolvedThreads);
    EXPECT_EQ(resolveThreadCount(maxResolvedThreads),
              maxResolvedThreads);
}

TEST(ThreadCountTest, ArgsIntegration)
{
    ArgParser args("test");
    addThreadsOption(args);
    const char *argv[] = {"test", "--threads", "7"};
    args.parse(3, const_cast<char **>(argv));
    EXPECT_EQ(threadsFromArgs(args), 7u);
}

} // namespace
} // namespace bpsim
