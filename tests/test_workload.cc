/**
 * @file
 * Unit tests for the workload module: behaviour models, CFG helpers,
 * the synthetic program VM (determinism, reset, input switching) and
 * the SPECINT95 presets' calibrated properties.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>

#include "profile/profile_db.hh"
#include "support/stats.hh"
#include "workload/behavior.hh"
#include "workload/cfg.hh"
#include "workload/specint.hh"
#include "workload/synthetic_program.hh"

namespace bpsim
{
namespace
{

BehaviorContext
context(Rng &rng, std::uint64_t global = 0, std::uint64_t semantic = 0,
        InputSet input = InputSet::Ref)
{
    return BehaviorContext{rng, global, semantic, input};
}

TEST(BiasedBehaviorTest, RespectsPerInputProbability)
{
    Rng rng(1);
    BiasedBehavior behavior(0.9, 0.1);
    int train_taken = 0;
    int ref_taken = 0;
    for (int i = 0; i < 10000; ++i) {
        auto train_ctx = context(rng, 0, 0, InputSet::Train);
        train_taken += behavior.outcome(train_ctx);
        auto ref_ctx = context(rng, 0, 0, InputSet::Ref);
        ref_taken += behavior.outcome(ref_ctx);
    }
    EXPECT_NEAR(train_taken / 10000.0, 0.9, 0.02);
    EXPECT_NEAR(ref_taken / 10000.0, 0.1, 0.02);
}

TEST(LoopBehaviorTest, FixedTripIsExact)
{
    Rng rng(2);
    LoopBehavior behavior(5.0, 5.0, /*fixed_trip=*/true);
    // Each activation: 4 taken evaluations then one not-taken.
    for (int round = 0; round < 3; ++round) {
        int taken_run = 0;
        for (;;) {
            auto ctx = context(rng);
            if (!behavior.outcome(ctx))
                break;
            ++taken_run;
        }
        EXPECT_EQ(taken_run, 4) << "round " << round;
    }
}

TEST(LoopBehaviorTest, GeometricTripMeanAndBias)
{
    Rng rng(3);
    LoopBehavior behavior(10.0, 10.0, /*fixed_trip=*/false);
    Count taken = 0;
    Count total = 0;
    Count exits = 0;
    while (exits < 20000) {
        auto ctx = context(rng);
        const bool t = behavior.outcome(ctx);
        ++total;
        taken += t;
        exits += !t;
    }
    // Mean evaluations per activation ~= 10 => taken bias ~= 0.9.
    EXPECT_NEAR(static_cast<double>(total) / exits, 10.0, 0.5);
    EXPECT_NEAR(static_cast<double>(taken) / total, 0.9, 0.02);
}

TEST(LoopBehaviorTest, ResetAbandonsActivation)
{
    Rng rng(4);
    LoopBehavior behavior(100.0, 100.0, true);
    auto ctx = context(rng);
    EXPECT_TRUE(behavior.outcome(ctx)); // mid-loop
    behavior.reset();
    // A fresh activation starts counting from scratch (99 takens).
    for (int i = 0; i < 99; ++i)
        EXPECT_TRUE(behavior.outcome(ctx));
    EXPECT_FALSE(behavior.outcome(ctx));
}

TEST(PatternBehaviorTest, RepeatsExactly)
{
    Rng rng(5);
    PatternBehavior behavior({true, true, false});
    auto ctx = context(rng);
    for (int i = 0; i < 30; ++i)
        EXPECT_EQ(behavior.outcome(ctx), i % 3 != 2) << i;
    behavior.reset();
    EXPECT_TRUE(behavior.outcome(ctx));
}

TEST(CorrelatedBehaviorTest, FollowsSemanticParity)
{
    Rng rng(6);
    CorrelatedBehavior behavior(/*semantic_mask=*/0b101,
                                /*global_mask=*/0, false, false,
                                /*noise=*/0.0);
    for (std::uint64_t semantic : {0b000ull, 0b001ull, 0b100ull,
                                   0b101ull, 0b111ull}) {
        auto ctx = context(rng, 0, semantic);
        const bool expected =
            (__builtin_popcountll(semantic & 0b101) & 1) != 0;
        EXPECT_EQ(behavior.outcome(ctx), expected) << semantic;
    }
}

TEST(CorrelatedBehaviorTest, GlobalMaskAndInversion)
{
    Rng rng(7);
    CorrelatedBehavior behavior(0, /*global_mask=*/0b10,
                                /*invert_train=*/false,
                                /*invert_ref=*/true, 0.0);
    auto train_ctx = context(rng, 0b10, 0, InputSet::Train);
    auto ref_ctx = context(rng, 0b10, 0, InputSet::Ref);
    EXPECT_TRUE(behavior.outcome(train_ctx));
    EXPECT_FALSE(behavior.outcome(ref_ctx));
}

TEST(PhaseBehaviorTest, AlternatesBias)
{
    Rng rng(8);
    PhaseBehavior behavior(0.95, 0.05, 1000);
    int first_phase = 0;
    int second_phase = 0;
    for (int i = 0; i < 1000; ++i) {
        auto ctx = context(rng);
        first_phase += behavior.outcome(ctx);
    }
    for (int i = 0; i < 1000; ++i) {
        auto ctx = context(rng);
        second_phase += behavior.outcome(ctx);
    }
    EXPECT_GT(first_phase, 900);
    EXPECT_LT(second_phase, 100);
}

TEST(CfgTest, CountSitesIncludesLoopControls)
{
    Block block;
    block.items.emplace_back(BranchSite{});
    Loop loop;
    loop.body = std::make_unique<Block>();
    loop.body->items.emplace_back(BranchSite{});
    loop.body->items.emplace_back(BranchSite{});
    block.items.emplace_back(std::move(loop));
    EXPECT_EQ(countSites(block), 4u); // 2 plain + control + 2 body - 1
}

ProgramConfig
tinyConfig(std::uint64_t seed)
{
    ProgramConfig config;
    config.name = "tiny";
    config.staticBranches = 200;
    config.seed = seed;
    return config;
}

TEST(SyntheticProgramTest, DeterministicFromSeed)
{
    SyntheticProgram a = buildProgram(tinyConfig(42));
    SyntheticProgram b = buildProgram(tinyConfig(42));
    BranchRecord ra;
    BranchRecord rb;
    for (int i = 0; i < 20000; ++i) {
        ASSERT_TRUE(a.next(ra));
        ASSERT_TRUE(b.next(rb));
        ASSERT_EQ(ra, rb) << "diverged at " << i;
    }
}

TEST(SyntheticProgramTest, DifferentSeedsDiffer)
{
    SyntheticProgram a = buildProgram(tinyConfig(1));
    SyntheticProgram b = buildProgram(tinyConfig(2));
    BranchRecord ra;
    BranchRecord rb;
    int same = 0;
    for (int i = 0; i < 1000; ++i) {
        a.next(ra);
        b.next(rb);
        same += ra == rb;
    }
    EXPECT_LT(same, 100);
}

TEST(SyntheticProgramTest, ResetReplaysIdentically)
{
    SyntheticProgram program = buildProgram(tinyConfig(7));
    std::vector<BranchRecord> first;
    BranchRecord record;
    for (int i = 0; i < 5000; ++i) {
        program.next(record);
        first.push_back(record);
    }
    program.reset();
    for (int i = 0; i < 5000; ++i) {
        program.next(record);
        ASSERT_EQ(record, first[static_cast<std::size_t>(i)])
            << "at " << i;
    }
}

TEST(SyntheticProgramTest, InputSwitchChangesStreamNotStructure)
{
    SyntheticProgram program = buildProgram(tinyConfig(9));
    const std::size_t static_branches = program.staticBranchCount();

    std::set<Addr> ref_pcs;
    BranchRecord record;
    for (int i = 0; i < 300000; ++i) {
        program.next(record);
        ref_pcs.insert(record.pc);
    }

    program.setInput(InputSet::Train);
    EXPECT_EQ(program.staticBranchCount(), static_branches);
    std::set<Addr> train_pcs;
    for (int i = 0; i < 300000; ++i) {
        program.next(record);
        train_pcs.insert(record.pc);
    }

    // Same address space: train PCs are a subset of the program's
    // sites, and the two inputs overlap heavily.
    std::size_t common = 0;
    for (const Addr pc : train_pcs)
        common += ref_pcs.count(pc);
    EXPECT_GT(common, train_pcs.size() / 2);
}

TEST(SyntheticProgramTest, StaticBranchCountNearBudget)
{
    for (const auto id : allSpecPrograms()) {
        const ProgramConfig config = specProgramConfig(id);
        SyntheticProgram program = makeSpecProgram(id, InputSet::Ref);
        const double actual =
            static_cast<double>(program.staticBranchCount());
        const double target =
            static_cast<double>(config.staticBranches);
        EXPECT_GE(actual, target);
        EXPECT_LT(actual, target * 1.15)
            << specProgramName(id) << " overshoots its branch budget";
    }
}

TEST(SyntheticProgramTest, UniquePcs)
{
    SyntheticProgram program = buildProgram(tinyConfig(11));
    std::set<Addr> pcs;
    std::size_t sites = 0;
    for (auto &region : program.regionData()) {
        forEachSite(region.body, [&](BranchSite &site) {
            pcs.insert(site.pc);
            ++sites;
        });
    }
    EXPECT_EQ(pcs.size(), sites);
}

TEST(SyntheticProgramTest, GapsMatchConfiguredDensity)
{
    ProgramConfig config = tinyConfig(13);
    config.avgGap = 10.0;
    SyntheticProgram program = buildProgram(config);
    BranchRecord record;
    Count instructions = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        program.next(record);
        instructions += record.instGap;
    }
    const double cbrs_ki = 1000.0 * n / static_cast<double>(
                                            instructions);
    EXPECT_NEAR(cbrs_ki, 100.0, 15.0);
}

TEST(SpecPresetTest, NamesRoundTrip)
{
    for (const auto id : allSpecPrograms())
        EXPECT_EQ(specProgramFromName(specProgramName(id)), id);
    EXPECT_EXIT(specProgramFromName("vortex"),
                ::testing::ExitedWithCode(1), "unknown program");
}

TEST(SpecPresetTest, BiasedFractionOrdering)
{
    // The calibrated ordering the paper's Table 2 argument needs:
    // go has by far the fewest highly biased executions; m88ksim and
    // perl the most.
    std::map<std::string, double> biased;
    for (const auto id : allSpecPrograms()) {
        SyntheticProgram program = makeSpecProgram(id, InputSet::Ref);
        ProfileDb profile = ProfileDb::collect(program, 400000);
        biased[program.name()] =
            percent(profile.executedAboveBias(0.95),
                    profile.totalExecuted());
    }
    EXPECT_LT(biased["go"], biased["gcc"]);
    EXPECT_LT(biased["gcc"], biased["perl"]);
    EXPECT_LT(biased["perl"], biased["m88ksim"]);
    EXPECT_LT(biased["go"], biased["compress"]);
}

TEST(SpecPresetTest, TrainCoverageGating)
{
    // Some perl regions must be train-ineligible (trainCoverage 0.62).
    SyntheticProgram program =
        makeSpecProgram(SpecProgram::Perl, InputSet::Ref);
    std::size_t gated = 0;
    for (const auto &region : program.regionData()) {
        if (region.weight[static_cast<unsigned>(InputSet::Train)] ==
                0.0 &&
            region.weight[static_cast<unsigned>(InputSet::Ref)] > 0.0) {
            ++gated;
        }
    }
    EXPECT_GT(gated, program.regionData().size() / 10);
}

} // namespace
} // namespace bpsim
