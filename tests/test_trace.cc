/**
 * @file
 * Unit tests for the trace module: in-memory traces, the binary trace
 * file format (round-trips, delta encoding edge cases, error
 * handling), text traces, and the bounded-stream adapter.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "support/random.hh"
#include "trace/memory_trace.hh"
#include "trace/trace_io.hh"

namespace bpsim
{
namespace
{

/** Unique-ish temp path per test. */
std::string
tempPath(const std::string &tag)
{
    return testing::TempDir() + "bpsim_" + tag + "_" +
           std::to_string(::getpid()) + ".trace";
}

MemoryTrace
randomTrace(std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    MemoryTrace trace;
    Addr pc = 0x120000000ULL;
    for (std::size_t i = 0; i < n; ++i) {
        // Mix forward and backward jumps to exercise zigzag deltas.
        if (rng.chance(0.3))
            pc -= 4 * rng.nextBelow(1000);
        else
            pc += 4 * rng.nextBelow(1000);
        trace.append({pc, rng.chance(0.5),
                      1 + static_cast<std::uint32_t>(
                              rng.nextBelow(30))});
    }
    return trace;
}

TEST(MemoryTraceTest, AppendAndReplay)
{
    MemoryTrace trace;
    trace.append({0x100, true, 3});
    trace.append({0x104, false, 1});
    EXPECT_EQ(trace.size(), 2u);
    EXPECT_EQ(trace.instructionCount(), 4u);

    BranchRecord record;
    ASSERT_TRUE(trace.next(record));
    EXPECT_EQ(record.pc, 0x100u);
    EXPECT_TRUE(record.taken);
    ASSERT_TRUE(trace.next(record));
    EXPECT_EQ(record.pc, 0x104u);
    EXPECT_FALSE(trace.next(record));

    trace.reset();
    ASSERT_TRUE(trace.next(record));
    EXPECT_EQ(record.pc, 0x100u);
}

TEST(MemoryTraceTest, CaptureWithLimit)
{
    MemoryTrace source = randomTrace(100, 3);
    MemoryTrace copy = MemoryTrace::capture(source, 40);
    EXPECT_EQ(copy.size(), 40u);
    EXPECT_EQ(copy.data()[0], source.data()[0]);
    EXPECT_EQ(copy.data()[39], source.data()[39]);
}

TEST(BinaryTraceTest, RoundTrip)
{
    MemoryTrace original = randomTrace(5000, 17);
    const std::string path = tempPath("roundtrip");
    {
        TraceWriter writer(path);
        original.reset();
        EXPECT_EQ(writer.writeAll(original), 5000u);
    }
    TraceReader reader(path);
    MemoryTrace loaded = MemoryTrace::capture(reader);
    ASSERT_EQ(loaded.size(), original.size());
    EXPECT_EQ(loaded.data(), original.data());
    std::remove(path.c_str());
}

TEST(BinaryTraceTest, ReaderReset)
{
    MemoryTrace original = randomTrace(100, 5);
    const std::string path = tempPath("reset");
    {
        TraceWriter writer(path);
        original.reset();
        writer.writeAll(original);
    }
    TraceReader reader(path);
    BranchRecord first;
    ASSERT_TRUE(reader.next(first));
    // Drain some, then rewind: must replay from the first record.
    BranchRecord record;
    for (int i = 0; i < 50; ++i)
        ASSERT_TRUE(reader.next(record));
    reader.reset();
    ASSERT_TRUE(reader.next(record));
    EXPECT_EQ(record, first);
    std::remove(path.c_str());
}

TEST(BinaryTraceTest, CompressionIsCompact)
{
    // Sequential nearby branches should cost ~2-3 bytes per record.
    MemoryTrace trace;
    for (int i = 0; i < 1000; ++i)
        trace.append({0x1000u + 4u * (i % 50), i % 3 == 0, 8});
    const std::string path = tempPath("compact");
    {
        TraceWriter writer(path);
        trace.reset();
        writer.writeAll(trace);
    }
    std::FILE *f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    const long bytes = std::ftell(f);
    std::fclose(f);
    EXPECT_LT(bytes, 3500);
    std::remove(path.c_str());
}

TEST(BinaryTraceTest, MissingFileIsFatal)
{
    EXPECT_EXIT(TraceReader("/nonexistent/path/x.trace"),
                ::testing::ExitedWithCode(1), "cannot open");
}

TEST(BinaryTraceTest, BadMagicIsFatal)
{
    const std::string path = tempPath("badmagic");
    std::FILE *f = std::fopen(path.c_str(), "wb");
    std::fputs("NOTATRACE", f);
    std::fclose(f);
    EXPECT_EXIT(TraceReader reader(path),
                ::testing::ExitedWithCode(1), "not a bpsim trace");
    std::remove(path.c_str());
}

/**
 * Adversarial records for the format fuzzer: PCs jump across the
 * whole address space (including 0 and ~0, the zigzag extremes) and
 * instruction gaps span the full uint32 range, so every varint width
 * the encoder can emit shows up.
 */
MemoryTrace
fuzzTrace(std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    MemoryTrace trace;
    for (std::size_t i = 0; i < n; ++i) {
        BranchRecord record;
        switch (rng.nextBelow(4)) {
          case 0: // nearby code: small deltas
            record.pc = 0x400000 + 4 * rng.nextBelow(4096);
            break;
          case 1: // arbitrary 64-bit addresses
            record.pc = rng.next();
            break;
          case 2: // the zigzag extremes
            record.pc = rng.chance(0.5) ? 0 : ~Addr{0};
            break;
          default: // high half, forcing large signed deltas
            record.pc = (Addr{1} << 63) + rng.nextBelow(1 << 20);
            break;
        }
        record.taken = rng.chance(0.5);
        record.instGap = 1 + static_cast<std::uint32_t>(rng.nextBelow(
                                 0xffffffffu));
        trace.append(record);
    }
    return trace;
}

TEST(BinaryTraceFuzzTest, RandomStreamsRoundTripExactly)
{
    // Property: write(read(s)) == s for any record sequence,
    // including single-record and large-ish streams.
    const std::size_t sizes[] = {1, 2, 7, 100, 4096};
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        const std::size_t n = sizes[seed % 5];
        MemoryTrace original = fuzzTrace(n, seed);
        const std::string path =
            tempPath("fuzz" + std::to_string(seed));
        {
            TraceWriter writer(path);
            original.reset();
            ASSERT_EQ(writer.writeAll(original), n) << "seed " << seed;
        }
        TraceReader reader(path);
        MemoryTrace loaded = MemoryTrace::capture(reader);
        ASSERT_EQ(loaded.size(), original.size()) << "seed " << seed;
        // Record-exact: pc, direction and gap all survive the
        // delta/zigzag encoding.
        EXPECT_EQ(loaded.data(), original.data()) << "seed " << seed;

        // reset() replays the identical sequence a second time.
        reader.reset();
        MemoryTrace replayed = MemoryTrace::capture(reader);
        EXPECT_EQ(replayed.data(), original.data()) << "seed " << seed;
        std::remove(path.c_str());
    }
}

TEST(BinaryTraceFuzzTest, ZeroRecordTraceRoundTrips)
{
    const std::string path = tempPath("empty");
    {
        TraceWriter writer(path);
        EXPECT_EQ(writer.count(), 0u);
    }
    TraceReader reader(path);
    BranchRecord record;
    EXPECT_FALSE(reader.next(record));
    // An exhausted empty stream stays exhausted, and reset() does not
    // conjure records either.
    EXPECT_FALSE(reader.next(record));
    reader.reset();
    EXPECT_FALSE(reader.next(record));
    std::remove(path.c_str());
}

TEST(BinaryTraceFuzzTest, TruncatedFileDiesCleanly)
{
    // Write a valid multi-record trace, then chop the file at several
    // byte lengths inside the record stream. Every truncation point
    // must be reported as corruption — never silently decoded as
    // garbage records.
    MemoryTrace original = fuzzTrace(50, 0xfeed);
    const std::string path = tempPath("trunc");
    {
        TraceWriter writer(path);
        original.reset();
        writer.writeAll(original);
    }
    std::FILE *f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    const long full = std::ftell(f);
    std::fclose(f);

    for (const long cut : {full - 1, full - 3, full / 2}) {
        ASSERT_GT(cut, 0);
        const std::string cut_path =
            tempPath("trunc_cut" + std::to_string(cut));
        std::FILE *in = std::fopen(path.c_str(), "rb");
        std::FILE *out = std::fopen(cut_path.c_str(), "wb");
        ASSERT_NE(in, nullptr);
        ASSERT_NE(out, nullptr);
        for (long i = 0; i < cut; ++i)
            std::fputc(std::fgetc(in), out);
        std::fclose(in);
        std::fclose(out);

        EXPECT_EXIT(
            {
                TraceReader reader(cut_path);
                BranchRecord record;
                while (reader.next(record)) {
                }
            },
            ::testing::ExitedWithCode(1),
            "truncated varint|ends mid-record")
            << "cut at " << cut << " of " << full;
        std::remove(cut_path.c_str());
    }
    std::remove(path.c_str());
}

TEST(TextTraceTest, RoundTrip)
{
    MemoryTrace original = randomTrace(200, 23);
    const std::string path = tempPath("text");
    original.reset();
    writeTextTrace(original, path);
    MemoryTrace loaded = readTextTrace(path);
    ASSERT_EQ(loaded.size(), original.size());
    EXPECT_EQ(loaded.data(), original.data());
    std::remove(path.c_str());
}

TEST(BoundedStreamTest, LimitsAndResets)
{
    MemoryTrace trace = randomTrace(100, 29);
    BoundedStream bounded(trace, 10);
    BranchRecord record;
    int produced = 0;
    while (bounded.next(record))
        ++produced;
    EXPECT_EQ(produced, 10);
    bounded.reset();
    produced = 0;
    while (bounded.next(record))
        ++produced;
    EXPECT_EQ(produced, 10);
}

} // namespace
} // namespace bpsim
