/**
 * @file
 * Unit tests for the dynamic predictors: learning behaviour on
 * controlled streams, collision accounting, size accounting, and the
 * predictor factory.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "predictor/bimodal.hh"
#include "predictor/bimode.hh"
#include "predictor/counter_table.hh"
#include "predictor/factory.hh"
#include "predictor/ghist.hh"
#include "predictor/global_history.hh"
#include "predictor/gshare.hh"
#include "predictor/registry.hh"
#include "predictor/two_bc_gskew.hh"
#include "support/bits.hh"
#include "support/error.hh"
#include "support/random.hh"

namespace bpsim
{
namespace
{

/** Drive @p predictor with one (pc, outcome); returns correctness. */
bool
step(BranchPredictor &predictor, Addr pc, bool taken)
{
    const bool prediction = predictor.predict(pc);
    predictor.update(pc, taken);
    predictor.updateHistory(taken);
    return prediction == taken;
}

/** Accuracy of @p predictor over @p outcomes at a single PC. */
double
accuracyOn(BranchPredictor &predictor, Addr pc,
           const std::vector<bool> &outcomes, std::size_t warmup)
{
    std::size_t correct = 0;
    std::size_t measured = 0;
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        const bool ok = step(predictor, pc, outcomes[i]);
        if (i >= warmup) {
            ++measured;
            correct += ok;
        }
    }
    return measured == 0 ? 0.0
                         : static_cast<double>(correct) /
                               static_cast<double>(measured);
}

TEST(CounterTable, RequiresPowerOfTwo)
{
    EXPECT_DEATH(CounterTable(1000, 2, 1), "power of two");
}

TEST(CounterTable, CollisionTagging)
{
    CounterTable table(16, 2, 1);
    table.lookup(3, 0x100);
    EXPECT_EQ(table.stats().collisions, 0u); // first touch: no tag yet
    table.lookup(3, 0x100);
    EXPECT_EQ(table.stats().collisions, 0u); // same branch: no collision
    table.lookup(3, 0x200);
    EXPECT_EQ(table.stats().collisions, 1u); // different branch
    table.classify(true);
    EXPECT_EQ(table.stats().constructive, 1u);
    table.lookup(3, 0x100);
    table.classify(false);
    EXPECT_EQ(table.stats().destructive, 1u);
    EXPECT_EQ(table.stats().lookups, 4u);
}

TEST(CounterTable, ResetClearsCountersAndTags)
{
    CounterTable table(8, 2, 1);
    table.lookup(0, 0x40).train(true);
    table.lookup(0, 0x40).train(true);
    table.reset();
    EXPECT_EQ(table.at(0).value(), 1u);
    table.lookup(0, 0x80);
    EXPECT_EQ(table.stats().collisions, 0u); // tag was cleared
}

TEST(GlobalHistoryTest, ShiftAndMask)
{
    GlobalHistory history(4);
    history.push(true);
    history.push(false);
    history.push(true);
    EXPECT_EQ(history.value(), 0b101u);
    history.push(true);
    history.push(true);
    EXPECT_EQ(history.value(), 0b0111u); // oldest bit dropped
    EXPECT_EQ(history.recent(2), 0b11u);
}

TEST(BimodalTest, LearnsBiasedBranch)
{
    Bimodal predictor(2048);
    double correct = 0;
    for (int i = 0; i < 1000; ++i)
        correct += step(predictor, 0x1000, true);
    EXPECT_GT(correct / 1000.0, 0.99);
}

TEST(BimodalTest, SeparatesDistinctBranches)
{
    Bimodal predictor(2048);
    for (int i = 0; i < 100; ++i) {
        step(predictor, 0x1000, true);
        step(predictor, 0x2000, false);
    }
    EXPECT_TRUE(predictor.predict(0x1000));
    EXPECT_FALSE(predictor.predict(0x2000));
    // PC-distinct branches in a big table: no collisions.
    EXPECT_EQ(predictor.collisionStats().collisions, 0u);
}

TEST(BimodalTest, CannotLearnAlternation)
{
    Bimodal predictor(2048);
    std::vector<bool> outcomes;
    for (int i = 0; i < 2000; ++i)
        outcomes.push_back(i % 2 == 0);
    // A 2-bit counter dithers on TNTN...; accuracy is poor.
    EXPECT_LT(accuracyOn(predictor, 0x1000, outcomes, 100), 0.7);
}

TEST(GshareTest, LearnsAlternation)
{
    Gshare predictor(2048);
    std::vector<bool> outcomes;
    for (int i = 0; i < 4000; ++i)
        outcomes.push_back(i % 2 == 0);
    EXPECT_GT(accuracyOn(predictor, 0x1000, outcomes, 1000), 0.99);
}

TEST(GshareTest, LearnsHistoryParity)
{
    // Outcome = parity of the last three outcomes: pure correlation,
    // invisible to bimodal, fully learnable by gshare.
    Gshare predictor(4096);
    Rng rng(5);
    std::uint64_t history = 0;
    std::size_t correct = 0;
    std::size_t measured = 0;
    for (int i = 0; i < 20000; ++i) {
        const bool taken = (__builtin_popcountll(history & 7) & 1) != 0;
        const bool ok = step(predictor, 0x1000, taken);
        history = (history << 1) | taken;
        if (i >= 4000) {
            ++measured;
            correct += ok;
        }
    }
    EXPECT_GT(static_cast<double>(correct) / measured, 0.95);
}

TEST(GhistTest, LearnsFixedTripLoop)
{
    // A counted loop with trip 5 embedded in otherwise-taken filler:
    // after warmup the run length identifies the exit.
    Ghist predictor(2048);
    std::size_t correct = 0;
    std::size_t measured = 0;
    for (int iter = 0; iter < 3000; ++iter) {
        for (int t = 0; t < 5; ++t) {
            const bool taken = t < 4;
            const bool ok = step(predictor, 0x4000, taken);
            if (iter >= 500) {
                ++measured;
                correct += ok;
            }
        }
        // A not-taken separator branch between loop visits.
        step(predictor, 0x4040, false);
    }
    EXPECT_GT(static_cast<double>(correct) / measured, 0.95);
}

TEST(GshareTest, AliasingDegradesThenSizeRecovers)
{
    // Many branches with conflicting behaviour: a small gshare
    // collides destructively; a big one separates them.
    const int branches = 2048;
    Count small_destructive = 0;
    auto run = [&](std::size_t bytes, bool record) {
        Gshare predictor(bytes);
        std::size_t correct = 0;
        std::size_t total = 0;
        for (int round = 0; round < 100; ++round) {
            for (int b = 0; b < branches; ++b) {
                const Addr pc = 0x1000 + 4 * b;
                // Stable per-branch direction, uncorrelated with the
                // branch index so colliding pairs disagree half the
                // time (destructive aliasing).
                const bool taken = (mix64(b) & 1) != 0;
                correct += step(predictor, pc, taken);
                ++total;
            }
        }
        if (record)
            small_destructive =
                predictor.collisionStats().destructive;
        return static_cast<double>(correct) / total;
    };
    const double small = run(256, true);
    const double large = run(65536, false);
    EXPECT_GT(small_destructive, 0u);
    EXPECT_GT(large, small + 0.02);
    EXPECT_GT(large, 0.95);
}

TEST(BiModeTest, OppositeBiasBranchesDoNotDestroyEachOther)
{
    // Two branch populations of opposite bias whose gshare indices
    // would collide; bi-mode's choice table routes them to different
    // direction tables.
    BiMode predictor(4096);
    Rng rng(11);
    std::size_t correct = 0;
    std::size_t total = 0;
    for (int round = 0; round < 4000; ++round) {
        correct += step(predictor, 0x1000, true);
        correct += step(predictor, 0x2000, false);
        total += 2;
    }
    EXPECT_GT(static_cast<double>(correct) / total, 0.95);
}

TEST(TwoBcGskewTest, LearnsBiasAndCorrelation)
{
    TwoBcGskew predictor(8192);
    // Biased branch.
    double correct = 0;
    for (int i = 0; i < 2000; ++i)
        correct += step(predictor, 0x1000, true);
    EXPECT_GT(correct / 2000.0, 0.98);

    // Alternating branch.
    std::vector<bool> outcomes;
    for (int i = 0; i < 4000; ++i)
        outcomes.push_back(i % 2 == 0);
    EXPECT_GT(accuracyOn(predictor, 0x2000, outcomes, 1000), 0.95);
}

TEST(TwoBcGskewTest, HistoryLengthDefaults)
{
    TwoBcGskew predictor(8192); // 8192-counter banks: 13 index bits
    EXPECT_EQ(predictor.histG0Bits(), 6u);
    EXPECT_EQ(predictor.histG1Bits(), 13u);
    EXPECT_EQ(predictor.histMetaBits(), 6u);
}

TEST(SizeAccounting, MatchesBudget)
{
    for (std::size_t bytes : {2048u, 8192u, 32768u}) {
        for (const auto kind : allPredictorKinds()) {
            auto predictor = makePredictor(kind, bytes);
            EXPECT_EQ(predictor->sizeBytes(), bytes)
                << predictorKindName(kind) << " at " << bytes;
        }
    }
}

TEST(Factory, ParsesSpecStrings)
{
    auto predictor = makePredictor("gshare:16384");
    EXPECT_EQ(predictor->name(), "gshare");
    EXPECT_EQ(predictor->sizeBytes(), 16384u);

    auto defaulted = makePredictor("bimodal");
    EXPECT_EQ(defaulted->sizeBytes(), 8192u);
}

TEST(Factory, RejectsGarbage)
{
    // Unknown names and malformed sizes surface as config_invalid
    // errors (recoverable, unlike the old fatal()) whose message
    // enumerates every registered predictor.
    try {
        makePredictor("nonsense:123");
        FAIL() << "expected a config_invalid ErrorException";
    } catch (const ErrorException &error) {
        EXPECT_EQ(error.error().code(), ErrorCode::ConfigInvalid);
        EXPECT_NE(error.error().message().find("unknown predictor"),
                  std::string::npos);
        for (const std::string &name :
             PredictorRegistry::instance().names()) {
            EXPECT_NE(error.error().message().find(name),
                      std::string::npos)
                << "message should list '" << name << "'";
        }
    }

    try {
        makePredictor("gshare:abc");
        FAIL() << "expected a config_invalid ErrorException";
    } catch (const ErrorException &error) {
        EXPECT_EQ(error.error().code(), ErrorCode::ConfigInvalid);
        EXPECT_NE(error.error().message().find("bad predictor size"),
                  std::string::npos);
    }
}

TEST(Factory, RegistryCoversAllKindsAndExtensions)
{
    const PredictorRegistry &registry = PredictorRegistry::instance();
    for (const auto kind : allPredictorKinds()) {
        const PredictorInfo *info =
            registry.find(predictorKindName(kind));
        ASSERT_NE(info, nullptr) << predictorKindName(kind);
        EXPECT_TRUE(info->paperKind);
        EXPECT_TRUE(info->kernelCapable);
    }
    for (const char *name : {"tage", "perceptron", "agree",
                             "tournament", "gselect", "yags", "ideal"}) {
        const PredictorInfo *info = registry.find(name);
        ASSERT_NE(info, nullptr) << name;
        EXPECT_FALSE(info->paperKind) << name;
        auto predictor = info->make(8192);
        ASSERT_NE(predictor, nullptr) << name;
        // Registered name and self-reported name agree ("ideal" is
        // the spec alias of the ideal_gshare class).
        if (std::string(name) != "ideal") {
            EXPECT_EQ(predictor->name(), name);
        }
    }
}

TEST(Factory, RegistrySpecsRoundTrip)
{
    // Every registered predictor constructs through the spec path.
    for (const std::string &name :
         PredictorRegistry::instance().names()) {
        auto predictor = makePredictor(name + ":8192");
        ASSERT_NE(predictor, nullptr) << name;
        auto defaulted = makePredictor(name);
        ASSERT_NE(defaulted, nullptr) << name;
    }
}

TEST(Determinism, SameStreamSameStats)
{
    for (const auto kind : allPredictorKinds()) {
        auto a = makePredictor(kind, 4096);
        auto b = makePredictor(kind, 4096);
        Rng rng(13);
        std::vector<std::pair<Addr, bool>> stream;
        for (int i = 0; i < 5000; ++i)
            stream.emplace_back(0x1000 + 4 * rng.nextBelow(200),
                                rng.chance(0.6));
        int agree = 0;
        for (const auto &[pc, taken] : stream) {
            const bool pa = a->predict(pc);
            const bool pb = b->predict(pc);
            agree += pa == pb;
            a->update(pc, taken);
            b->update(pc, taken);
            a->updateHistory(taken);
            b->updateHistory(taken);
        }
        EXPECT_EQ(agree, 5000) << predictorKindName(kind);
    }
}

TEST(ResetRestoresColdState, AllKinds)
{
    for (const auto kind : allPredictorKinds()) {
        auto predictor = makePredictor(kind, 4096);
        Rng rng(17);
        // Warm up with a fixed stream, capture predictions.
        std::vector<std::pair<Addr, bool>> stream;
        for (int i = 0; i < 3000; ++i)
            stream.emplace_back(0x1000 + 4 * rng.nextBelow(100),
                                rng.chance(0.4));
        std::vector<bool> first;
        for (const auto &[pc, taken] : stream) {
            first.push_back(predictor->predict(pc));
            predictor->update(pc, taken);
            predictor->updateHistory(taken);
        }
        predictor->reset();
        std::size_t i = 0;
        for (const auto &[pc, taken] : stream) {
            EXPECT_EQ(predictor->predict(pc), first[i])
                << predictorKindName(kind) << " at " << i;
            predictor->update(pc, taken);
            predictor->updateHistory(taken);
            ++i;
        }
    }
}

} // namespace
} // namespace bpsim
