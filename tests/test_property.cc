/**
 * @file
 * Property-based suites, parameterized over predictor kinds and
 * sizes. Each property is an invariant every configuration must hold:
 * budget accounting, collision bookkeeping consistency, determinism,
 * a biased-stream accuracy floor, the benefit ordering between table
 * sizes on an aliased workload, and the run journal's aggregation
 * invariants.
 */

#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "core/engine.hh"
#include "core/runner.hh"
#include "obs/run_journal.hh"
#include "support/bits.hh"
#include "core/experiment.hh"
#include "predictor/factory.hh"
#include "support/random.hh"
#include "trace/memory_trace.hh"
#include "workload/specint.hh"
#include "workload/synthetic_program.hh"

namespace bpsim
{
namespace
{

using KindSize = std::tuple<PredictorKind, std::size_t>;

class PredictorProperty : public ::testing::TestWithParam<KindSize>
{
  protected:
    PredictorKind kind() const { return std::get<0>(GetParam()); }
    std::size_t bytes() const { return std::get<1>(GetParam()); }

    std::unique_ptr<BranchPredictor>
    make() const
    {
        return makePredictor(kind(), bytes());
    }
};

TEST_P(PredictorProperty, SizeAccountingMatchesBudget)
{
    EXPECT_EQ(make()->sizeBytes(), bytes());
}

TEST_P(PredictorProperty, BiasedStreamAccuracyFloor)
{
    // 200 branches visited round-robin (as a program loop would),
    // each 98% biased in a fixed direction: every predictor at every
    // size must clear 90% accuracy. Round-robin order matters: it
    // gives the global history its position-identifying power; on a
    // randomly ordered stream the pure-history schemes legitimately
    // collapse to the marginal taken rate.
    auto predictor = make();
    Rng rng(kind() == PredictorKind::Bimodal ? 1 : 2);
    Count correct = 0;
    const Count total = 60000;
    for (Count i = 0; i < total; ++i) {
        const unsigned b = static_cast<unsigned>(i % 200);
        const Addr pc = 0x1000 + 4 * b;
        const bool majority = (mix64(b) & 1) != 0;
        const bool taken = rng.chance(0.98) ? majority : !majority;
        correct += predictor->predict(pc) == taken;
        predictor->update(pc, taken);
        predictor->updateHistory(taken);
    }
    EXPECT_GT(static_cast<double>(correct) / total, 0.90)
        << predictorKindName(kind()) << " at " << bytes();
}

TEST_P(PredictorProperty, CollisionBookkeepingConsistent)
{
    auto predictor = make();
    Rng rng(7);
    for (int i = 0; i < 20000; ++i) {
        const Addr pc = 0x1000 + 4 * rng.nextBelow(5000);
        const bool taken = rng.chance(0.5);
        predictor->predict(pc);
        predictor->update(pc, taken);
        predictor->updateHistory(taken);
    }
    const CollisionStats stats = predictor->collisionStats();
    EXPECT_GT(stats.lookups, 0u);
    EXPECT_LE(stats.collisions, stats.lookups);
    // Every collision was classified exactly once.
    EXPECT_EQ(stats.constructive + stats.destructive,
              stats.collisions);
}

TEST_P(PredictorProperty, ClearCollisionStatsKeepsTables)
{
    auto predictor = make();
    for (int i = 0; i < 500; ++i) {
        predictor->predict(0x100);
        predictor->update(0x100, true);
        predictor->updateHistory(true);
    }
    const bool prediction = predictor->predict(0x100);
    predictor->clearCollisionStats();
    EXPECT_EQ(predictor->collisionStats().lookups, 0u);
    EXPECT_EQ(predictor->predict(0x100), prediction);
}

TEST_P(PredictorProperty, EngineRunsAreReproducible)
{
    ProgramConfig config;
    config.name = "prop";
    config.staticBranches = 300;
    config.seed = 1234;
    SyntheticProgram program = buildProgram(config);

    auto a = make();
    SimOptions options;
    options.maxBranches = 50000;
    const SimStats first = simulate(*a, program, options);
    auto b = make();
    const SimStats second = simulate(*b, program, options);
    EXPECT_EQ(first.mispredictions, second.mispredictions);
    EXPECT_EQ(first.instructions, second.instructions);
    EXPECT_EQ(first.collisions.collisions,
              second.collisions.collisions);
}

INSTANTIATE_TEST_SUITE_P(
    AllKindsAndSizes, PredictorProperty,
    ::testing::Combine(::testing::ValuesIn(allPredictorKinds()),
                       ::testing::Values(std::size_t{2048},
                                         std::size_t{8192},
                                         std::size_t{32768})),
    [](const ::testing::TestParamInfo<KindSize> &info) {
        return predictorKindName(std::get<0>(info.param)) + "_" +
               std::to_string(std::get<1>(info.param));
    });

class SchemeProperty
    : public ::testing::TestWithParam<StaticScheme>
{
};

TEST_P(SchemeProperty, HintsOnlyCoverProfiledBranches)
{
    ProgramConfig config;
    config.name = "prop";
    config.staticBranches = 500;
    config.seed = 77;
    SyntheticProgram program = buildProgram(config);

    auto predictor = makePredictor(PredictorKind::Gshare, 4096);
    ProfileDb profile;
    SimOptions options;
    options.maxBranches = 100000;
    options.profile = &profile;
    simulate(*predictor, program, options);

    const HintDb hints = selectStatic(GetParam(), profile);
    for (const auto &[pc, taken] : hints.entries()) {
        const BranchProfile *record = profile.find(pc);
        ASSERT_NE(record, nullptr);
        // The hint must be the profiled majority direction.
        EXPECT_EQ(taken, record->majorityTaken());
        // And the branch must satisfy its scheme's criterion.
        if (GetParam() == StaticScheme::Static95) {
            EXPECT_GT(record->bias(), 0.95);
        }
        if (GetParam() == StaticScheme::StaticAcc) {
            EXPECT_GT(record->bias(), record->accuracy());
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, SchemeProperty,
    ::testing::Values(StaticScheme::Static95, StaticScheme::StaticAcc,
                      StaticScheme::StaticFac),
    [](const ::testing::TestParamInfo<StaticScheme> &info) {
        return staticSchemeName(info.param);
    });

/**
 * Run the test_runner-style 12-cell matrix (2 programs x 2 kinds x 3
 * schemes, 60k/120k branch phases) on @p threads workers with a
 * journal attached, filling @p journal for invariant checks (the
 * journal owns a mutex, so it cannot be returned by value).
 */
void
runJournaledMatrix(unsigned threads, obs::RunJournal &journal)
{
    RunnerOptions options;
    options.threads = threads;
    options.journal = &journal;
    ExperimentRunner runner(options);
    for (const auto id : {SpecProgram::Go, SpecProgram::Compress}) {
        const std::size_t program =
            runner.addProgram(makeSpecProgram(id, InputSet::Ref));
        for (const auto kind :
             {PredictorKind::Gshare, PredictorKind::Bimodal}) {
            for (const auto scheme :
                 {StaticScheme::None, StaticScheme::Static95,
                  StaticScheme::StaticAcc}) {
                ExperimentConfig config;
                config.kind = kind;
                config.sizeBytes = 2048;
                config.scheme = scheme;
                config.profileBranches = 60'000;
                config.evalBranches = 120'000;
                runner.addCell(program, config);
            }
        }
    }
    runner.run();
}

TEST(JournalProperty, EventCountsSumAcrossKindsAndThreads)
{
    obs::RunJournal journal("property-matrix");
    runJournaledMatrix(4, journal);
    const obs::JournalSummary summary = journal.summary();

    EXPECT_EQ(summary.totalEvents, journal.eventCount());
    Count by_kind = 0;
    for (const auto &[kind, count] : summary.eventsByKind)
        by_kind += count;
    EXPECT_EQ(by_kind, summary.totalEvents);
    Count by_thread = 0;
    for (const auto &[thread, count] : summary.eventsByThread) {
        EXPECT_LT(thread, 4u);
        by_thread += count;
    }
    EXPECT_EQ(by_thread, summary.totalEvents);
}

TEST(JournalProperty, CellAndPhaseBracketsBalance)
{
    obs::RunJournal journal("property-matrix");
    runJournaledMatrix(4, journal);
    const obs::JournalSummary summary = journal.summary();

    EXPECT_EQ(summary.cellsBegun, 12u);
    EXPECT_EQ(summary.cellsEnded, summary.cellsBegun);
    EXPECT_TRUE(summary.phasesBalanced);
    EXPECT_EQ(summary.phaseBegins, summary.phaseEnds);
    // Every scoped phase timer was stopped before run() returned.
    EXPECT_EQ(journal.timers().openCount(), 0u);

    const std::vector<obs::Event> events = journal.events();
    ASSERT_FALSE(events.empty());
    EXPECT_EQ(events.front().kind, obs::EventKind::RunBegin);
    EXPECT_EQ(events.back().kind, obs::EventKind::RunEnd);
    for (std::size_t i = 0; i < events.size(); ++i)
        EXPECT_EQ(events[i].sequence, i);
}

TEST(JournalProperty, CollisionClassificationPartitions)
{
    obs::RunJournal journal("property-matrix");
    runJournaledMatrix(2, journal);

    // Per cell: the constructive/destructive/neutral split is a
    // partition of that cell's collisions.
    Count cells_checked = 0;
    for (const obs::Event &event : journal.events()) {
        if (event.kind != obs::EventKind::CellEnd)
            continue;
        ++cells_checked;
        EXPECT_EQ(event.u64("constructive") +
                      event.u64("destructive") +
                      event.u64("neutral"),
                  event.u64("collisions"))
            << event.label;
        EXPECT_LE(event.u64("collisions"), event.u64("lookups"))
            << event.label;
    }
    EXPECT_EQ(cells_checked, 12u);

    // And in aggregate, after summing over all cells.
    const obs::JournalSummary summary = journal.summary();
    EXPECT_EQ(summary.constructive + summary.destructive +
                  summary.neutral,
              summary.collisions);
    EXPECT_GT(summary.collisions, 0u);
}

TEST(JournalProperty, SummaryStableAcrossThreadCounts)
{
    // Thread attribution changes with the pool size; the aggregated
    // physics (cells, branches, collision totals) must not. Fused
    // passes split across spare workers, so the *group* event count
    // tracks the pool size, but every member lands in exactly one
    // chunk, so the member total is stable too.
    obs::RunJournal serial("property-matrix");
    runJournaledMatrix(1, serial);
    obs::RunJournal pooled("property-matrix");
    runJournaledMatrix(4, pooled);
    const obs::JournalSummary one = serial.summary();
    const obs::JournalSummary four = pooled.summary();
    EXPECT_EQ(one.totalEvents - one.fusedGroups,
              four.totalEvents - four.fusedGroups);
    EXPECT_GE(four.fusedGroups, one.fusedGroups);
    EXPECT_EQ(one.fusedMembers, four.fusedMembers);
    EXPECT_EQ(one.cellsEnded, four.cellsEnded);
    EXPECT_EQ(one.kernelCells, four.kernelCells);
    EXPECT_EQ(one.branches, four.branches);
    EXPECT_EQ(one.collisions, four.collisions);
    EXPECT_EQ(one.constructive, four.constructive);
    EXPECT_EQ(one.destructive, four.destructive);
}

TEST(SizeBenefitProperty, LargerGshareNeverMuchWorseOnAliasedLoad)
{
    // On a destructively aliased round-robin stream, a 64x larger
    // gshare must be strictly better (capacity separates the
    // colliding (pc, history) pairs).
    auto run = [](std::size_t bytes) {
        auto predictor = makePredictor(PredictorKind::Gshare, bytes);
        Count correct = 0;
        const Count total = 120000;
        for (Count i = 0; i < total; ++i) {
            const unsigned b = static_cast<unsigned>(i % 3000);
            const Addr pc = 0x1000 + 4 * b;
            const bool taken = (mix64(b) & 1) != 0;
            correct += predictor->predict(pc) == taken;
            predictor->update(pc, taken);
            predictor->updateHistory(taken);
        }
        return static_cast<double>(correct) / total;
    };
    EXPECT_GT(run(65536), run(1024));
}

} // namespace
} // namespace bpsim
