/**
 * @file
 * Property tests for the tagged-geometric predictor family: TAGE's
 * allocation/useful-bit/provider mechanics, the folded-history (CSR)
 * invariant, the hashed perceptron's threshold-gated training and
 * weight saturation bounds, and checkpoint fingerprints for
 * registry-constructed predictors.
 *
 * Streams are generated from a fixed-seed xorshift so every property
 * is checked over a deterministic but adversarial outcome sequence.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <string>

#include "core/checkpoint.hh"
#include "core/runner.hh"
#include "predictor/long_history.hh"
#include "predictor/perceptron.hh"
#include "predictor/tage.hh"
#include "workload/specint.hh"
#include "workload/synthetic_program.hh"

namespace bpsim
{
namespace
{

/** Deterministic stream source (xorshift64). */
class Stream
{
  public:
    explicit Stream(std::uint64_t seed) : state(seed) {}

    std::uint64_t
    next()
    {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        return state;
    }

    bool bit() { return (next() & 1) != 0; }

    /** A plausible branch pc from a small pool of sites. */
    Addr
    pc()
    {
        return 0x4000 + (next() % 97) * instructionBytes;
    }

  private:
    std::uint64_t state;
};

/**
 * One protocol step: predict, update with the stream outcome, push
 * history. Returns whether the prediction was correct.
 */
template <typename P>
bool
step(P &predictor, Addr pc, bool taken)
{
    const bool predicted = predictor.predict(pc);
    predictor.update(pc, taken);
    predictor.updateHistory(taken);
    return predicted == taken;
}

TEST(FoldedHistoryTest, IncrementalFoldMatchesRecompute)
{
    // Window/fold widths covering every shape TAGE instantiates:
    // dividing, non-dividing, fold == window, single-bit folds.
    const struct
    {
        BitCount window, fold;
    } shapes[] = {{10, 7}, {20, 8}, {40, 11}, {80, 11},
                  {80, 8},  {64, 8}, {10, 10}, {7, 1}};

    for (const auto &shape : shapes) {
        LongHistory history(128);
        FoldedHistory fold(shape.window, shape.fold);
        Stream stream(0xf01dedu + shape.window * 131 + shape.fold);
        for (int i = 0; i < 4096; ++i) {
            const bool in = stream.bit();
            const bool out = history.bit(shape.window - 1);
            history.push(in);
            fold.update(in, out);
            ASSERT_EQ(fold.value(), fold.recompute(history))
                << "window=" << shape.window
                << " fold=" << shape.fold << " step=" << i;
        }
    }
}

TEST(TageTest, FoldsTrackTheLongHistoryThroughTheProtocol)
{
    Tage tage(2048);
    Stream stream(0x7a6e);
    for (int i = 0; i < 20'000; ++i)
        step(tage, stream.pc(), stream.bit());

    for (unsigned b = 0; b < Tage::numBanks; ++b) {
        const FoldedHistory &fold = tage.bankIndexFold(b);
        EXPECT_EQ(fold.windowBits(), tage.bankHistoryBits(b));
        EXPECT_EQ(fold.value(), fold.recompute(tage.longHistory()))
            << "bank " << b;
    }
}

TEST(TageTest, AllocatesOnlyOnMisprediction)
{
    Tage tage(2048);
    Stream stream(0xa110c);
    Count last_allocations = 0;
    bool any_allocation = false;
    for (int i = 0; i < 30'000; ++i) {
        const bool correct = step(tage, stream.pc(), stream.bit());
        const Count now = tage.allocationCount();
        if (correct) {
            ASSERT_EQ(now, last_allocations)
                << "allocation on a correct prediction, step " << i;
        }
        ASSERT_LE(now, last_allocations + 1);
        any_allocation = any_allocation || now != last_allocations;
        last_allocations = now;
    }
    EXPECT_TRUE(any_allocation)
        << "random stream never triggered an allocation";
}

TEST(TageTest, ProviderIsTheLongestTagMatch)
{
    Tage tage(2048);
    Stream stream(0x9807);
    bool any_provider = false;
    for (int i = 0; i < 30'000; ++i) {
        const Addr pc = stream.pc();
        tage.predict(pc);

        const int provider = tage.lastProvider();
        for (unsigned b = 0; b < Tage::numBanks; ++b) {
            // Latched hit flags mirror the stored tags...
            ASSERT_EQ(tage.lastBankHit(b),
                      tage.tagAt(b, tage.lastBankIndex(b)) ==
                          tage.lastBankTag(b))
                << "bank " << b << " step " << i;
            // ...and nothing above the provider matched.
            if (provider >= 0 &&
                b > static_cast<unsigned>(provider)) {
                ASSERT_FALSE(tage.lastBankHit(b))
                    << "bank " << b << " outranks provider "
                    << provider << " at step " << i;
            }
        }
        if (provider >= 0) {
            ASSERT_TRUE(tage.lastBankHit(
                static_cast<unsigned>(provider)));
            any_provider = true;
        }

        const bool taken = stream.bit();
        tage.update(pc, taken);
        tage.updateHistory(taken);
    }
    EXPECT_TRUE(any_provider)
        << "no tagged bank ever provided a prediction";
}

/** Sum of every useful counter across every bank, checking the
 * saturation bound as it goes. */
Count
usefulSum(const Tage &tage)
{
    Count sum = 0;
    for (unsigned b = 0; b < Tage::numBanks; ++b) {
        for (std::size_t i = 0; i < tage.bankEntries(b); ++i) {
            EXPECT_LE(tage.usefulAt(b, i), Tage::usefulMax);
            sum += tage.usefulAt(b, i);
        }
    }
    return sum;
}

TEST(TageTest, UsefulCountersSaturateAndAgePeriodically)
{
    // Same stream, aging effectively off vs. every 1024 updates.
    Tage frozen(2048, Count{1} << 40);
    Tage aged(2048, 1024);
    Stream stream_a(0xa9e5), stream_b(0xa9e5);
    for (int i = 0; i < 30'000; ++i) {
        const Addr pc = stream_a.pc();
        const bool taken = stream_a.bit();
        step(frozen, pc, taken);
        step(aged, stream_b.pc(), stream_b.bit());
    }

    EXPECT_EQ(frozen.agingPasses(), 0u);
    EXPECT_GE(aged.agingPasses(), 29u); // 30'000 / 1024
    // The bound holds everywhere; some entry actually reached it.
    std::uint8_t max_useful = 0;
    for (unsigned b = 0; b < Tage::numBanks; ++b)
        for (std::size_t i = 0; i < frozen.bankEntries(b); ++i)
            max_useful = std::max(max_useful, frozen.usefulAt(b, i));
    EXPECT_EQ(max_useful, Tage::usefulMax);
    // Periodic halving keeps the aged copy's counters strictly
    // leaner than the frozen one's over the same stream.
    EXPECT_LT(usefulSum(aged), usefulSum(frozen));
}

TEST(PerceptronTest, WeightsStayInSaturationBounds)
{
    HashedPerceptron perceptron(512);
    Stream stream(0x3e1);
    for (int i = 0; i < 50'000; ++i)
        step(perceptron, stream.pc(), stream.bit());

    for (unsigned t = 0; t < HashedPerceptron::numTables; ++t) {
        for (std::size_t i = 0; i < perceptron.tableEntries(); ++i) {
            ASSERT_GE(perceptron.weightAt(t, i), -128)
                << "table " << t << " entry " << i;
            ASSERT_LE(perceptron.weightAt(t, i), 127)
                << "table " << t << " entry " << i;
        }
    }
}

TEST(PerceptronTest, TrainingIsThresholdGated)
{
    HashedPerceptron perceptron(2048);
    Stream stream(0x7177);
    int confident_correct = 0;
    for (int i = 0; i < 30'000; ++i) {
        const Addr pc = stream.pc();
        const bool taken = stream.bit();
        const bool predicted = perceptron.predict(pc);
        const int sum_before = perceptron.lastSum();
        perceptron.update(pc, taken);

        // Re-predicting the same pc before any history push reuses
        // the same table indices, so the sum moves iff update()
        // trained the selected weights.
        perceptron.predict(pc);
        const int sum_after = perceptron.lastSum();
        const int magnitude =
            sum_before < 0 ? -sum_before : sum_before;
        if (predicted == taken &&
            magnitude > perceptron.threshold()) {
            ASSERT_EQ(sum_after, sum_before)
                << "trained a confident correct prediction, step "
                << i;
            ++confident_correct;
        } else if (taken) {
            ASSERT_GT(sum_after, sum_before) << "step " << i;
        } else {
            ASSERT_LT(sum_after, sum_before) << "step " << i;
        }

        perceptron.updateHistory(taken);
    }
    EXPECT_GT(confident_correct, 0);
}

ExperimentConfig
taggedConfig(const std::string &predictor, StaticScheme scheme)
{
    ExperimentConfig config;
    config.predictor = predictor;
    config.sizeBytes = 2048;
    config.scheme = scheme;
    config.profileBranches = 30'000;
    config.evalBranches = 60'000;
    return config;
}

TEST(TaggedCheckpointTest, RegistryPredictorsFingerprint)
{
    const SyntheticProgram program =
        makeSpecProgram(SpecProgram::Go, InputSet::Ref);

    const std::string tage_fp = cellFingerprint(
        program, taggedConfig("tage", StaticScheme::Static95));
    const std::string perceptron_fp = cellFingerprint(
        program, taggedConfig("perceptron", StaticScheme::Static95));
    ASSERT_FALSE(tage_fp.empty());
    ASSERT_FALSE(perceptron_fp.empty());
    EXPECT_NE(tage_fp, perceptron_fp);

    // Determinism across calls.
    EXPECT_EQ(cellFingerprint(
                  program,
                  taggedConfig("tage", StaticScheme::Static95)),
              tage_fp);

    // Naming a paper predictor through the registry field yields the
    // same fingerprint as the enum route: identity is centralized.
    ExperimentConfig by_kind;
    by_kind.kind = PredictorKind::Gshare;
    by_kind.sizeBytes = 2048;
    by_kind.scheme = StaticScheme::Static95;
    by_kind.profileBranches = 30'000;
    by_kind.evalBranches = 60'000;
    EXPECT_EQ(cellFingerprint(program, by_kind),
              cellFingerprint(
                  program,
                  taggedConfig("gshare", StaticScheme::Static95)));
}

TEST(TaggedCheckpointTest, ResumeRestoresTaggedFamilyCells)
{
    const std::string path =
        ::testing::TempDir() + "tagged_checkpoint.jsonl";
    std::remove(path.c_str());

    const auto run = [&](bool resume) {
        RunnerOptions options;
        options.threads = 2;
        options.checkpointPath = path;
        options.resume = resume;
        ExperimentRunner runner(options);
        const std::size_t program = runner.addProgram(
            makeSpecProgram(SpecProgram::Go, InputSet::Ref));
        for (const char *predictor : {"tage", "perceptron"}) {
            for (const auto scheme :
                 {StaticScheme::None, StaticScheme::Static95}) {
                runner.addCell(program,
                               taggedConfig(predictor, scheme));
            }
        }
        return runner.run();
    };

    const MatrixResult executed = run(false);
    for (const CellResult &cell : executed.cells)
        ASSERT_TRUE(cell.ok());
    EXPECT_EQ(executed.restoredCells, 0u);

    const MatrixResult restored = run(true);
    ASSERT_EQ(restored.cells.size(), executed.cells.size());
    EXPECT_EQ(restored.restoredCells, restored.cells.size());
    for (std::size_t i = 0; i < restored.cells.size(); ++i) {
        ASSERT_TRUE(restored.cells[i].ok()) << "cell " << i;
        EXPECT_TRUE(restored.cells[i].restored) << "cell " << i;
        EXPECT_EQ(restored.cells[i].result.stats.mispredictions,
                  executed.cells[i].result.stats.mispredictions)
            << "cell " << i;
        EXPECT_EQ(restored.cells[i].result.hintCount,
                  executed.cells[i].result.hintCount)
            << "cell " << i;
    }
    std::remove(path.c_str());
}

} // namespace
} // namespace bpsim
