/**
 * @file
 * Unit tests for the support library: saturating counters, bit
 * utilities, RNG distributions, skewing functions, statistics.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "support/bits.hh"
#include "support/random.hh"
#include "support/sat_counter.hh"
#include "support/skew.hh"
#include "support/stats.hh"

namespace bpsim
{
namespace
{

TEST(SatCounter, SaturatesAtBothEnds)
{
    SatCounter counter(2, 0);
    counter.decrement();
    EXPECT_EQ(counter.value(), 0u);
    for (int i = 0; i < 10; ++i)
        counter.increment();
    EXPECT_EQ(counter.value(), 3u);
    counter.increment();
    EXPECT_EQ(counter.value(), 3u);
}

TEST(SatCounter, MsbIsPrediction)
{
    SatCounter counter(2, 0);
    EXPECT_FALSE(counter.taken());
    counter.set(1);
    EXPECT_FALSE(counter.taken());
    counter.set(2);
    EXPECT_TRUE(counter.taken());
    counter.set(3);
    EXPECT_TRUE(counter.taken());
}

TEST(SatCounter, WeakConstruction)
{
    EXPECT_EQ(SatCounter::weak(2, true).value(), 2u);
    EXPECT_EQ(SatCounter::weak(2, false).value(), 1u);
    EXPECT_TRUE(SatCounter::weak(2, true).taken());
    EXPECT_FALSE(SatCounter::weak(2, false).taken());
    EXPECT_EQ(SatCounter::weak(3, true).value(), 4u);
    EXPECT_EQ(SatCounter::weak(3, false).value(), 3u);
}

TEST(SatCounter, TrainMovesTowardOutcome)
{
    SatCounter counter = SatCounter::weak(2, false);
    counter.train(true);
    EXPECT_TRUE(counter.taken());
    counter.train(false);
    counter.train(false);
    EXPECT_FALSE(counter.taken());
}

TEST(Bits, MaskValues)
{
    EXPECT_EQ(mask(0), 0u);
    EXPECT_EQ(mask(1), 1u);
    EXPECT_EQ(mask(8), 0xffu);
    EXPECT_EQ(mask(64), ~std::uint64_t{0});
}

TEST(Bits, PowerOfTwo)
{
    EXPECT_TRUE(isPowerOfTwo(1));
    EXPECT_TRUE(isPowerOfTwo(1024));
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_FALSE(isPowerOfTwo(3));
    EXPECT_FALSE(isPowerOfTwo(1023));
}

TEST(Bits, Log2)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(1024), 10u);
    EXPECT_EQ(floorLog2(1025), 10u);
    EXPECT_EQ(ceilLog2(1024), 10u);
    EXPECT_EQ(ceilLog2(1025), 11u);
}

TEST(Bits, FoldPreservesLowBitsWhenNarrow)
{
    EXPECT_EQ(foldBits(0xab, 8), 0xabu);
    // 0xab ^ 0xcd folded to 8 bits.
    EXPECT_EQ(foldBits(0xcdab, 8), 0xabu ^ 0xcdu);
    EXPECT_EQ(foldBits(0x1234, 64), 0x1234u);
    EXPECT_EQ(foldBits(0xffff, 0), 0u);
}

TEST(Rng, DeterministicFromSeed)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 4);
}

TEST(Rng, NextBelowInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.nextBelow(17), 17u);
}

TEST(Rng, ChanceMatchesProbability)
{
    Rng rng(11);
    int hits = 0;
    const int trials = 100000;
    for (int i = 0; i < trials; ++i)
        hits += rng.chance(0.3);
    EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.01);
}

TEST(Rng, GeometricMean)
{
    Rng rng(13);
    double total = 0;
    const int trials = 100000;
    for (int i = 0; i < trials; ++i)
        total += static_cast<double>(rng.geometric(10.0));
    EXPECT_NEAR(total / trials, 10.0, 0.3);
}

TEST(Rng, ZipfIsSkewed)
{
    Rng rng(17);
    Rng::Zipf zipf(100, 1.0);
    std::vector<int> counts(100, 0);
    for (int i = 0; i < 100000; ++i)
        ++counts[zipf.sample(rng)];
    EXPECT_GT(counts[0], counts[10]);
    EXPECT_GT(counts[10], counts[90]);
}

TEST(Rng, DiscreteRespectsZeroWeights)
{
    Rng rng(19);
    Rng::Discrete dist({1.0, 0.0, 2.0});
    std::set<std::size_t> seen;
    for (int i = 0; i < 10000; ++i)
        seen.insert(dist.sample(rng));
    EXPECT_TRUE(seen.count(0));
    EXPECT_FALSE(seen.count(1));
    EXPECT_TRUE(seen.count(2));
}

TEST(Skew, HIsBijective)
{
    for (BitCount bits : {1u, 2u, 4u, 8u, 10u}) {
        std::set<std::uint64_t> images;
        for (std::uint64_t x = 0; x < (std::uint64_t{1} << bits); ++x) {
            const std::uint64_t y = skewH(x, bits);
            EXPECT_LT(y, std::uint64_t{1} << bits);
            images.insert(y);
        }
        EXPECT_EQ(images.size(), std::size_t{1} << bits)
            << "H not bijective at width " << bits;
    }
}

TEST(Skew, HinvInvertsH)
{
    for (BitCount bits : {1u, 2u, 5u, 12u}) {
        for (std::uint64_t x = 0; x < (std::uint64_t{1} << bits); ++x) {
            EXPECT_EQ(skewHinv(skewH(x, bits), bits), x);
            EXPECT_EQ(skewH(skewHinv(x, bits), bits), x);
        }
    }
}

TEST(Skew, BanksDisperseCollisions)
{
    // Inputs colliding in bank 0 should mostly not collide in bank 1:
    // the inter-bank dispersion property the gskew vote depends on.
    const BitCount bits = 10;
    Rng rng(23);
    int both = 0;
    int bank0 = 0;
    for (int i = 0; i < 20000; ++i) {
        const std::uint64_t a1 = rng.nextBelow(1 << bits);
        const std::uint64_t h1 = rng.nextBelow(1 << bits);
        const std::uint64_t a2 = rng.nextBelow(1 << bits);
        const std::uint64_t h2 = rng.nextBelow(1 << bits);
        if (a1 == a2 && h1 == h2)
            continue;
        if (skewIndex(0, a1, h1, bits) == skewIndex(0, a2, h2, bits)) {
            ++bank0;
            both += skewIndex(1, a1, h1, bits) ==
                    skewIndex(1, a2, h2, bits);
        }
    }
    ASSERT_GT(bank0, 0);
    // A colliding pair should re-collide in another bank at roughly
    // the base rate (1/2^bits), far below 10%.
    EXPECT_LT(static_cast<double>(both) / bank0, 0.1);
}

TEST(Stats, RunningStatMoments)
{
    RunningStat stat;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        stat.add(x);
    EXPECT_EQ(stat.count(), 8u);
    EXPECT_DOUBLE_EQ(stat.mean(), 5.0);
    EXPECT_NEAR(stat.variance(), 4.571428, 1e-5);
    EXPECT_DOUBLE_EQ(stat.min(), 2.0);
    EXPECT_DOUBLE_EQ(stat.max(), 9.0);
}

TEST(Stats, CorrelationSigns)
{
    Correlation pos;
    Correlation neg;
    for (int i = 0; i < 50; ++i) {
        pos.add(i, 2.0 * i + 1);
        neg.add(i, -3.0 * i);
    }
    EXPECT_NEAR(pos.r(), 1.0, 1e-9);
    EXPECT_NEAR(neg.r(), -1.0, 1e-9);
}

TEST(Stats, PercentAndPerKilo)
{
    EXPECT_DOUBLE_EQ(percent(1, 4), 25.0);
    EXPECT_DOUBLE_EQ(percent(0, 0), 0.0);
    EXPECT_DOUBLE_EQ(perKilo(5, 1000), 5.0);
    EXPECT_DOUBLE_EQ(perKilo(5, 0), 0.0);
}

TEST(Stats, FormatFixed)
{
    EXPECT_EQ(formatFixed(3.14159, 2), "3.14");
    EXPECT_EQ(formatFixed(-1.0, 1), "-1.0");
}

} // namespace
} // namespace bpsim
