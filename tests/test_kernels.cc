/**
 * @file
 * Analytic expectations for the micro-kernel workloads. Each kernel's
 * prediction difficulty is known in closed form, so these tests pin
 * both the kernels and the predictors simultaneously.
 */

#include <gtest/gtest.h>

#include "core/engine.hh"
#include "predictor/factory.hh"
#include "workload/kernels.hh"

namespace bpsim
{
namespace
{

double
accuracyOf(Kernel kernel, PredictorKind kind, std::size_t bytes)
{
    SyntheticProgram program = makeKernel(kernel);
    auto predictor = makePredictor(kind, bytes);
    SimOptions options;
    options.maxBranches = 200000;
    options.warmupBranches = 40000;
    return simulate(*predictor, program, options).accuracyPercent();
}

TEST(KernelTest, NamesRoundTrip)
{
    for (const auto kernel : allKernels())
        EXPECT_EQ(kernelFromName(kernelName(kernel)), kernel);
    EXPECT_EXIT(kernelFromName("bogus"), ::testing::ExitedWithCode(1),
                "unknown kernel");
}

TEST(KernelTest, KernelsAreDeterministic)
{
    for (const auto kernel : allKernels()) {
        SyntheticProgram a = makeKernel(kernel);
        SyntheticProgram b = makeKernel(kernel);
        BranchRecord ra;
        BranchRecord rb;
        for (int i = 0; i < 5000; ++i) {
            a.next(ra);
            b.next(rb);
            ASSERT_EQ(ra, rb) << kernelName(kernel) << " at " << i;
        }
    }
}

TEST(KernelTest, MatrixSweepHistoryCountsLoops)
{
    // Counted loops within the history window: gshare nearly perfect,
    // bimodal pays ~1/trip per loop level on the exits.
    const double gshare =
        accuracyOf(Kernel::MatrixSweep, PredictorKind::Gshare, 4096);
    const double bimodal =
        accuracyOf(Kernel::MatrixSweep, PredictorKind::Bimodal, 4096);
    EXPECT_GT(gshare, 97.5);
    EXPECT_LT(bimodal, 95.0);
    EXPECT_GT(bimodal, 88.0);
}

TEST(KernelTest, ListTraversalIsMemoryless)
{
    // Geometric trip counts: no predictor can beat the control's
    // bias; everyone lands near 1 - 1/trip weighted by branch mix.
    for (const auto kind :
         {PredictorKind::Bimodal, PredictorKind::TwoBcGskew}) {
        const double acc =
            accuracyOf(Kernel::ListTraversal, kind, 4096);
        EXPECT_GT(acc, 93.0) << predictorKindName(kind);
        EXPECT_LT(acc, 99.5) << predictorKindName(kind);
    }
}

TEST(KernelTest, DispatchChainsResistEveryScheme)
{
    for (const auto kind : allPredictorKinds()) {
        const double acc =
            accuracyOf(Kernel::InterpreterDispatch, kind, 8192);
        EXPECT_GT(acc, 65.0) << predictorKindName(kind);
        EXPECT_LT(acc, 85.0) << predictorKindName(kind);
    }
}

TEST(KernelTest, QuicksortComparisonIsIrreducibleNoise)
{
    // ~half the stream is a 50/50 comparison; the rest is an easy
    // counted loop: ceiling ~ 0.5 * 1.0 + 0.5 * 0.5 = 75%.
    for (const auto kind : allPredictorKinds()) {
        const double acc =
            accuracyOf(Kernel::QuicksortPartition, kind, 8192);
        EXPECT_GT(acc, 68.0) << predictorKindName(kind);
        EXPECT_LT(acc, 78.0) << predictorKindName(kind);
    }
}

TEST(KernelTest, StateMachineSeparatesHistoryFromBias)
{
    // Deterministic period-two orbit: any history predictor is
    // perfect after warmup; bimodal is exactly at chance on the
    // three alternating branches (62.5% overall ceiling, and its
    // dithering counters land at 50%).
    const double bimodal = accuracyOf(Kernel::StateMachine,
                                      PredictorKind::Bimodal, 4096);
    EXPECT_LT(bimodal, 70.0);
    for (const auto kind :
         {PredictorKind::Ghist, PredictorKind::Gshare,
          PredictorKind::BiMode, PredictorKind::TwoBcGskew}) {
        EXPECT_GT(accuracyOf(Kernel::StateMachine, kind, 4096), 99.5)
            << predictorKindName(kind);
    }
}

} // namespace
} // namespace bpsim
