/**
 * @file
 * Sharded-sweep tests: the shard-spec parser, the fingerprint
 * partition, bit-identity of shard unions and merged-checkpoint
 * resumes against an unsharded run, merge rejection of bad shard
 * sets, warm-vs-cold artifact-cache identity, and fault injection at
 * the cache points proving cache damage never aborts a sweep.
 *
 * The FaultInjector is process-wide, so the fault tests run in the
 * ShardFaultTest fixture whose TearDown disarms.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include "core/checkpoint.hh"
#include "core/runner.hh"
#include "support/fault.hh"
#include "workload/specint.hh"

namespace bpsim
{
namespace
{

constexpr Count testProfileBranches = 60'000;
constexpr Count testEvalBranches = 120'000;

ExperimentConfig
testConfig(PredictorKind kind, StaticScheme scheme)
{
    ExperimentConfig config;
    config.kind = kind;
    config.sizeBytes = 2048;
    config.scheme = scheme;
    config.profileBranches = testProfileBranches;
    config.evalBranches = testEvalBranches;
    return config;
}

/** One program x 2 kinds x 3 schemes = 6 fingerprintable cells. */
void
addTestCells(ExperimentRunner &runner)
{
    const std::size_t program = runner.addProgram(
        makeSpecProgram(SpecProgram::Compress, InputSet::Ref));
    for (const auto kind :
         {PredictorKind::Gshare, PredictorKind::Bimodal}) {
        for (const auto scheme :
             {StaticScheme::None, StaticScheme::Static95,
              StaticScheme::StaticAcc}) {
            runner.addCell(program, testConfig(kind, scheme));
        }
    }
}

constexpr std::size_t testCellCount = 6;

MatrixResult
runMatrix(const RunnerOptions &options)
{
    ExperimentRunner runner(options);
    addTestCells(runner);
    return runner.run();
}

/** Fault-free single-thread unsharded run everything compares to. */
const MatrixResult &
reference()
{
    static const MatrixResult clean = runMatrix(RunnerOptions{});
    return clean;
}

void
expectSameDeterministicFields(const CellResult &a, const CellResult &b,
                              std::size_t index)
{
    EXPECT_EQ(a.result.stats.branches, b.result.stats.branches)
        << "cell " << index;
    EXPECT_EQ(a.result.stats.mispredictions,
              b.result.stats.mispredictions)
        << "cell " << index;
    EXPECT_EQ(a.result.stats.staticPredicted,
              b.result.stats.staticPredicted)
        << "cell " << index;
    EXPECT_EQ(a.result.stats.staticMispredictions,
              b.result.stats.staticMispredictions)
        << "cell " << index;
    EXPECT_EQ(a.result.stats.collisions.destructive,
              b.result.stats.collisions.destructive)
        << "cell " << index;
    EXPECT_EQ(a.result.hintCount, b.result.hintCount)
        << "cell " << index;
    EXPECT_EQ(a.result.simulatedBranches, b.result.simulatedBranches)
        << "cell " << index;
}

std::string
tempPath(const std::string &name)
{
    const std::string path = ::testing::TempDir() + name;
    std::filesystem::remove_all(path);
    return path;
}

RunnerOptions
shardOptions(unsigned index, unsigned count,
             const std::string &checkpoint = "",
             const std::string &cache_dir = "")
{
    RunnerOptions options;
    options.shardIndex = index;
    options.shardCount = count;
    options.checkpointPath = checkpoint;
    options.cacheDir = cache_dir;
    return options;
}

TEST(ParseShardSpec, AcceptsWellFormedSpecs)
{
    const auto one = parseShardSpec("1/1");
    ASSERT_TRUE(one.ok());
    EXPECT_EQ(one.value(), (std::pair<unsigned, unsigned>{1, 1}));

    const auto mid = parseShardSpec("3/8");
    ASSERT_TRUE(mid.ok());
    EXPECT_EQ(mid.value(), (std::pair<unsigned, unsigned>{3, 8}));
}

TEST(ParseShardSpec, RejectsMalformedSpecs)
{
    for (const char *spec :
         {"", "1", "/", "1/", "/2", "0/2", "3/2", "a/2", "2/b",
          "1/0", "-1/2", "1/2/3", "1 /2", "0123456789/2"}) {
        const auto parsed = parseShardSpec(spec);
        ASSERT_FALSE(parsed.ok()) << "spec '" << spec << "' parsed";
        EXPECT_EQ(parsed.error().code(), ErrorCode::ConfigInvalid)
            << "spec '" << spec << "'";
    }
}

TEST(ShardPartition, IsDeterministicAndInRange)
{
    const std::vector<std::string> fingerprints = {
        "v1|compress|2000|gshare:2048|none",
        "v1|compress|2000|gshare:2048|static_95",
        "v1|go|2000|bimodal:1024|none",
        "v1|gcc|2000|2bcgskew:8192|static_acc",
    };
    for (const unsigned count : {1u, 2u, 3u, 4u, 7u}) {
        for (const auto &fp : fingerprints) {
            const unsigned shard = shardOfFingerprint(fp, count);
            EXPECT_LT(shard, count);
            EXPECT_EQ(shard, shardOfFingerprint(fp, count));
        }
    }
    for (const auto &fp : fingerprints)
        EXPECT_EQ(shardOfFingerprint(fp, 1), 0u);
}

TEST(ShardRun, UnionOfShardsCoversMatrixExactlyOnce)
{
    for (const unsigned count : {2u, 4u}) {
        std::vector<char> owned(testCellCount, 0);
        Count skipped_total = 0;
        for (unsigned index = 1; index <= count; ++index) {
            const MatrixResult result =
                runMatrix(shardOptions(index, count));
            EXPECT_EQ(result.shardIndex, index);
            EXPECT_EQ(result.shardCount, count);
            EXPECT_EQ(result.shardCells + result.shardSkippedCells,
                      testCellCount);
            skipped_total += result.shardSkippedCells;
            ASSERT_EQ(result.cells.size(), testCellCount);
            for (std::size_t i = 0; i < testCellCount; ++i) {
                if (result.cells[i].shardSkipped)
                    continue;
                EXPECT_EQ(owned[i], 0)
                    << "cell " << i << " owned by two shards";
                owned[i] = 1;
                expectSameDeterministicFields(
                    result.cells[i], reference().cells[i], i);
            }
        }
        EXPECT_EQ(skipped_total, testCellCount * (count - 1));
        for (std::size_t i = 0; i < testCellCount; ++i)
            EXPECT_EQ(owned[i], 1) << "cell " << i << " unowned";
    }
}

/** Run every shard of a @p count way split, checkpointing each, and
 * return the checkpoint paths. */
std::vector<std::string>
runShards(unsigned count, const std::string &prefix,
          const std::string &cache_dir = "")
{
    std::vector<std::string> paths;
    for (unsigned index = 1; index <= count; ++index) {
        const std::string path = tempPath(
            prefix + std::to_string(index) + "of" +
            std::to_string(count) + ".jsonl");
        const MatrixResult result = runMatrix(
            shardOptions(index, count, path, cache_dir));
        EXPECT_EQ(result.failedCells, 0u);
        paths.push_back(path);
    }
    return paths;
}

TEST(ShardRun, MergedCheckpointResumesBitIdentical)
{
    for (const unsigned count : {2u, 4u}) {
        const std::vector<std::string> shards = runShards(
            count, "merge_identity_");
        const std::string merged = tempPath(
            "merged_" + std::to_string(count) + ".jsonl");
        const Result<MergeSummary> summary =
            mergeShardCheckpoints(shards, merged);
        ASSERT_TRUE(summary.ok()) << summary.error().describe();
        EXPECT_EQ(summary.value().shardCount, count);
        EXPECT_EQ(summary.value().matrixCells, testCellCount);
        EXPECT_EQ(summary.value().records, testCellCount);

        const std::string json =
            renderMergeSummaryJson(summary.value(), merged);
        EXPECT_NE(json.find("bpsim-merge-v1"), std::string::npos);

        // An unsharded resume from the merged file must restore every
        // cell and match the never-sharded reference bit-for-bit in
        // the deterministic fields, at any thread count.
        for (const unsigned threads : {1u, 2u, 4u}) {
            RunnerOptions options;
            options.threads = threads;
            options.checkpointPath = merged;
            options.resume = true;
            const MatrixResult resumed = runMatrix(options);
            EXPECT_EQ(resumed.restoredCells, testCellCount)
                << count << " shards, " << threads << " threads";
            EXPECT_EQ(resumed.actualBranches,
                      reference().actualBranches);
            EXPECT_EQ(resumed.totalBranches,
                      reference().totalBranches);
            for (std::size_t i = 0; i < testCellCount; ++i) {
                expectSameDeterministicFields(
                    resumed.cells[i], reference().cells[i], i);
            }
        }
    }
}

TEST(ShardRun, TrivialSingleShardMergeResumes)
{
    const std::vector<std::string> shards =
        runShards(1, "merge_trivial_");
    const std::string merged = tempPath("merged_trivial.jsonl");
    const Result<MergeSummary> summary =
        mergeShardCheckpoints(shards, merged);
    ASSERT_TRUE(summary.ok()) << summary.error().describe();
    EXPECT_EQ(summary.value().records, testCellCount);

    RunnerOptions options;
    options.checkpointPath = merged;
    options.resume = true;
    const MatrixResult resumed = runMatrix(options);
    EXPECT_EQ(resumed.restoredCells, testCellCount);
}

TEST(ShardRun, MismatchedCheckpointStampIsRejected)
{
    const std::vector<std::string> shards =
        runShards(2, "stamp_mismatch_");
    // Resuming shard 1's checkpoint as shard 2 of 2 (or under a
    // different shard count) must fail up front, not mix partitions.
    RunnerOptions options = shardOptions(2, 2, shards[0]);
    options.resume = true;
    EXPECT_THROW(runMatrix(options), ErrorException);

    RunnerOptions recount = shardOptions(1, 4, shards[0]);
    recount.resume = true;
    EXPECT_THROW(runMatrix(recount), ErrorException);
}

TEST(MergeRejects, BadShardSets)
{
    const std::vector<std::string> shards =
        runShards(2, "merge_reject_");
    const std::string out = tempPath("merge_reject_out.jsonl");

    // No inputs.
    {
        const Result<MergeSummary> merged =
            mergeShardCheckpoints({}, out);
        ASSERT_FALSE(merged.ok());
        EXPECT_EQ(merged.error().code(), ErrorCode::ConfigInvalid);
    }

    // The same shard twice.
    {
        const Result<MergeSummary> merged = mergeShardCheckpoints(
            {shards[0], shards[0]}, out);
        ASSERT_FALSE(merged.ok());
        EXPECT_EQ(merged.error().code(), ErrorCode::ConfigInvalid);
    }

    // A missing shard.
    {
        const Result<MergeSummary> merged =
            mergeShardCheckpoints({shards[0]}, out);
        ASSERT_FALSE(merged.ok());
        EXPECT_EQ(merged.error().code(), ErrorCode::ConfigInvalid);
    }

    // An absent input loads as an empty checkpoint (the resume
    // convention) and is then rejected for lacking a shard header.
    {
        const Result<MergeSummary> merged = mergeShardCheckpoints(
            {shards[0], tempPath("merge_reject_absent.jsonl")}, out);
        ASSERT_FALSE(merged.ok());
        EXPECT_EQ(merged.error().code(), ErrorCode::ConfigInvalid);
    }
}

TEST(MergeRejects, HeaderlessAndIncompleteAndMislabeled)
{
    const std::vector<std::string> shards =
        runShards(2, "merge_fabricate_");
    const std::string out = tempPath("merge_fabricate_out.jsonl");

    SweepCheckpoint first(shards[0]);
    ASSERT_TRUE(first.load().ok());
    ASSERT_TRUE(first.shard().has_value());
    const ShardStamp stamp = *first.shard();
    const std::vector<CheckpointRecord> records = first.snapshot();

    // Headerless input: records without a shard stamp.
    {
        const std::string path =
            tempPath("merge_fabricate_headerless.jsonl");
        SweepCheckpoint plain(path);
        for (const CheckpointRecord &record : records)
            ASSERT_TRUE(plain.record(record).ok());
        const Result<MergeSummary> merged =
            mergeShardCheckpoints({path, shards[1]}, out);
        ASSERT_FALSE(merged.ok());
        EXPECT_EQ(merged.error().code(), ErrorCode::ConfigInvalid);
    }

    // Incomplete shard: the stamp promises records the file lacks.
    if (stamp.shardCells > 0) {
        const std::string path =
            tempPath("merge_fabricate_incomplete.jsonl");
        SweepCheckpoint partial(path);
        partial.setShard(stamp);
        ASSERT_TRUE(partial.flush().ok());
        if (records.size() > 1) {
            ASSERT_TRUE(partial.record(records.front()).ok());
        }
        const Result<MergeSummary> merged =
            mergeShardCheckpoints({path, shards[1]}, out);
        ASSERT_FALSE(merged.ok());
        EXPECT_EQ(merged.error().code(), ErrorCode::ConfigInvalid);
    }

    // Mislabeled shard: shard 1's records filed under shard 2.
    {
        const std::string path =
            tempPath("merge_fabricate_mislabeled.jsonl");
        SweepCheckpoint relabeled(path);
        ShardStamp wrong = stamp;
        wrong.shardIndex = 2;
        relabeled.setShard(wrong);
        ASSERT_TRUE(relabeled.flush().ok());
        for (const CheckpointRecord &record : records)
            ASSERT_TRUE(relabeled.record(record).ok());
        const Result<MergeSummary> merged =
            mergeShardCheckpoints({shards[0], path}, out);
        ASSERT_FALSE(merged.ok());
        EXPECT_EQ(merged.error().code(), ErrorCode::ConfigInvalid);
    }
}

TEST(ArtifactCacheRun, WarmRunIsBitIdenticalToCold)
{
    const std::string cache_dir = tempPath("warm_cold_cache");

    RunnerOptions options;
    options.cacheDir = cache_dir;
    const MatrixResult cold = runMatrix(options);
    EXPECT_EQ(cold.cacheReplayHits, 0u);
    EXPECT_EQ(cold.cacheReplayMisses, 1u);
    EXPECT_EQ(cold.cacheCorrupt, 0u);
    EXPECT_GT(cold.cacheProfileMisses, 0u);

    const MatrixResult warm = runMatrix(options);
    EXPECT_EQ(warm.cacheReplayHits, 1u);
    EXPECT_EQ(warm.cacheReplayMisses, 0u);
    EXPECT_EQ(warm.cacheProfileMisses, 0u);
    EXPECT_GT(warm.cacheProfileHits, 0u);
    EXPECT_GT(warm.mappedBytes, 0u);
    EXPECT_EQ(warm.cacheCorrupt, 0u);

    // The warm run's results — including the branch accounting that
    // credits phases it never simulated locally — must match both the
    // cold run and the cache-less reference bit-for-bit.
    EXPECT_EQ(warm.actualBranches, reference().actualBranches);
    EXPECT_EQ(warm.totalBranches, reference().totalBranches);
    EXPECT_EQ(cold.actualBranches, reference().actualBranches);
    for (std::size_t i = 0; i < testCellCount; ++i) {
        expectSameDeterministicFields(cold.cells[i],
                                      reference().cells[i], i);
        expectSameDeterministicFields(warm.cells[i],
                                      reference().cells[i], i);
    }
}

class ShardFaultTest : public ::testing::Test
{
  protected:
    void TearDown() override { FaultInjector::instance().disarm(); }
};

TEST_F(ShardFaultTest, CacheWriteFaultNeverAbortsTheSweep)
{
    const std::string cache_dir = tempPath("fault_write_cache");
    ASSERT_TRUE(FaultInjector::instance()
                    .armFromSpec("cache_write:1")
                    .ok());

    RunnerOptions options;
    options.cacheDir = cache_dir;
    const MatrixResult result = runMatrix(options);
    EXPECT_EQ(result.failedCells, 0u);
    for (std::size_t i = 0; i < testCellCount; ++i) {
        expectSameDeterministicFields(result.cells[i],
                                      reference().cells[i], i);
    }
}

TEST_F(ShardFaultTest, CacheMapFaultFallsBackToRegeneration)
{
    const std::string cache_dir = tempPath("fault_map_cache");

    // Populate the cache fault-free, then poison the first load of
    // the warm run: it must count the artifact as corrupt, regenerate
    // and still finish with bit-identical results.
    RunnerOptions options;
    options.cacheDir = cache_dir;
    const MatrixResult cold = runMatrix(options);
    EXPECT_EQ(cold.failedCells, 0u);

    ASSERT_TRUE(
        FaultInjector::instance().armFromSpec("cache_map:1").ok());
    const MatrixResult warm = runMatrix(options);
    EXPECT_EQ(warm.failedCells, 0u);
    EXPECT_GE(warm.cacheCorrupt, 1u);
    EXPECT_EQ(warm.actualBranches, reference().actualBranches);
    for (std::size_t i = 0; i < testCellCount; ++i) {
        expectSameDeterministicFields(warm.cells[i],
                                      reference().cells[i], i);
    }
}

} // namespace
} // namespace bpsim
