/**
 * @file
 * Golden-value regression suite: fixed-seed experiment statistics for
 * every predictor kind x static scheme pinned against checked-in JSON
 * files under tests/golden/. Any change to predictor update rules,
 * selection logic, stream generation, or the devirtualized kernels
 * that alters results shows up here as an exact-value diff.
 *
 * The workload is a fully explicit ProgramConfig (never a SPEC
 * preset), so future workload-tuning PRs that adjust the presets do
 * not spuriously invalidate the goldens; only engine-behaviour
 * changes can.
 *
 * Regenerating after an intentional behaviour change:
 *
 *     BPSIM_WRITE_GOLDEN=1 ./build/tests/bpsim_tests \
 *         --gtest_filter='*GoldenTest*'
 *
 * then review the diff under tests/golden/ like any other code
 * change.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "core/experiment.hh"
#include "predictor/factory.hh"
#include "predictor/registry.hh"
#include "scenario/scenario.hh"
#include "staticsel/selection.hh"
#include "support/atomic_file.hh"
#include "support/json.hh"
#include "trace/replay_buffer.hh"
#include "workload/synthetic_program.hh"

#ifndef BPSIM_GOLDEN_DIR
#error "BPSIM_GOLDEN_DIR must point at tests/golden (set by CMake)"
#endif

namespace bpsim
{
namespace
{

constexpr Count goldenProfileBranches = 60'000;
constexpr Count goldenEvalBranches = 120'000;
constexpr std::size_t goldenSizeBytes = 2048;

const std::vector<StaticScheme> goldenSchemes = {
    StaticScheme::None,
    StaticScheme::Static95,
    StaticScheme::StaticAcc,
    StaticScheme::StaticFac,
};

/**
 * The pinned workload. Every knob is written out even where it
 * matches today's ProgramConfig default: the goldens must survive a
 * future PR retuning the defaults, so nothing here may depend on
 * them.
 */
ProgramConfig
goldenProgramConfig()
{
    ProgramConfig cfg;
    cfg.name = "golden";
    cfg.staticBranches = 900;
    cfg.avgGap = 8.0;
    cfg.zipfExponent = 1.0;
    cfg.meanRegionSites = 10;
    cfg.fracHighBias = 0.45;
    cfg.fracLowBias = 0.10;
    cfg.fracCorrelated = 0.15;
    cfg.fracPattern = 0.05;
    cfg.fracPhase = 0.03;
    cfg.medBiasLo = 0.75;
    cfg.medBiasHi = 0.95;
    cfg.highBiasHardFrac = 0.5;
    cfg.takenMajorityFrac = 0.35;
    cfg.fixedTripFrac = 0.5;
    cfg.meanScheduleLen = 6;
    cfg.meanScheduleRepeats = 64;
    cfg.loopDensity = 0.12;
    cfg.meanTripCount = 12;
    cfg.nestProbability = 0.25;
    cfg.emptyLoopFrac = 0.2;
    cfg.trainCoverage = 0.97;
    cfg.flipFraction = 0.02;
    cfg.driftFraction = 0.15;
    cfg.hotFlips = false;
    cfg.seed = 0x601d; // "gold"; arbitrary but pinned forever
    return cfg;
}

ExperimentConfig
goldenExperimentConfig(PredictorKind kind, StaticScheme scheme)
{
    ExperimentConfig config;
    config.kind = kind;
    config.sizeBytes = goldenSizeBytes;
    config.scheme = scheme;
    config.profileBranches = goldenProfileBranches;
    config.evalBranches = goldenEvalBranches;
    return config;
}

/** The pinned quantities, one per (kind, scheme) cell. */
struct GoldenStats
{
    Count branches = 0;
    Count instructions = 0;
    Count mispredictions = 0;
    Count staticPredicted = 0;
    Count staticMispredictions = 0;
    Count lookups = 0;
    Count collisions = 0;
    Count constructive = 0;
    Count destructive = 0;
    std::size_t hints = 0;
    Count simulatedBranches = 0;
    double mispKi = 0.0;
};

GoldenStats
fromResult(const ExperimentResult &result)
{
    GoldenStats g;
    g.branches = result.stats.branches;
    g.instructions = result.stats.instructions;
    g.mispredictions = result.stats.mispredictions;
    g.staticPredicted = result.stats.staticPredicted;
    g.staticMispredictions = result.stats.staticMispredictions;
    g.lookups = result.stats.collisions.lookups;
    g.collisions = result.stats.collisions.collisions;
    g.constructive = result.stats.collisions.constructive;
    g.destructive = result.stats.collisions.destructive;
    g.hints = result.hintCount;
    g.simulatedBranches = result.simulatedBranches;
    g.mispKi = result.stats.mispKi();
    return g;
}

Count
jsonCount(const JsonValue &cell, const std::string &key)
{
    return static_cast<Count>(cell.at(key).asNumber());
}

GoldenStats
fromJson(const JsonValue &cell)
{
    GoldenStats g;
    g.branches = jsonCount(cell, "branches");
    g.instructions = jsonCount(cell, "instructions");
    g.mispredictions = jsonCount(cell, "mispredictions");
    g.staticPredicted = jsonCount(cell, "static_predicted");
    g.staticMispredictions = jsonCount(cell, "static_mispredictions");
    g.lookups = jsonCount(cell, "lookups");
    g.collisions = jsonCount(cell, "collisions");
    g.constructive = jsonCount(cell, "constructive");
    g.destructive = jsonCount(cell, "destructive");
    g.hints = static_cast<std::size_t>(cell.at("hints").asNumber());
    g.simulatedBranches = jsonCount(cell, "simulated_branches");
    g.mispKi = cell.at("misp_ki").asNumber();
    return g;
}

/** Exact comparison; @p path names the run path under test. */
void
expectMatchesGolden(const GoldenStats &golden, const GoldenStats &got,
                    const std::string &path)
{
    SCOPED_TRACE(path);
    EXPECT_EQ(golden.branches, got.branches);
    EXPECT_EQ(golden.instructions, got.instructions);
    EXPECT_EQ(golden.mispredictions, got.mispredictions);
    EXPECT_EQ(golden.staticPredicted, got.staticPredicted);
    EXPECT_EQ(golden.staticMispredictions,
              got.staticMispredictions);
    EXPECT_EQ(golden.lookups, got.lookups);
    EXPECT_EQ(golden.collisions, got.collisions);
    EXPECT_EQ(golden.constructive, got.constructive);
    EXPECT_EQ(golden.destructive, got.destructive);
    EXPECT_EQ(golden.hints, got.hints);
    EXPECT_EQ(golden.simulatedBranches, got.simulatedBranches);
    // %.17g round-trips doubles exactly, so this too is exact.
    EXPECT_DOUBLE_EQ(golden.mispKi, got.mispKi);
}

std::string
formatDouble(double value)
{
    char buffer[64];
    std::snprintf(buffer, sizeof buffer, "%.17g", value);
    return buffer;
}

std::string
goldenPath(const std::string &name)
{
    return std::string(BPSIM_GOLDEN_DIR) + "/" + name + ".json";
}

void
writeGoldenFile(const std::string &name,
                const std::vector<GoldenStats> &cells)
{
    const std::string path = goldenPath(name);
    // Rendered into memory and written atomically (temp + rename), so
    // an interrupted regeneration can never leave a truncated golden
    // behind for the next test run to diff against.
    std::ostringstream out;
    out << "{\n";
    out << "  \"schema\": \"bpsim-golden-v1\",\n";
    out << "  \"predictor\": \"" << name << "\",\n";
    out << "  \"size_bytes\": " << goldenSizeBytes << ",\n";
    out << "  \"profile_branches\": " << goldenProfileBranches
        << ",\n";
    out << "  \"eval_branches\": " << goldenEvalBranches << ",\n";
    out << "  \"cells\": {\n";
    for (std::size_t i = 0; i < goldenSchemes.size(); ++i) {
        const GoldenStats &g = cells[i];
        out << "    \"" << staticSchemeName(goldenSchemes[i])
            << "\": {\n";
        out << "      \"branches\": " << g.branches << ",\n";
        out << "      \"instructions\": " << g.instructions
            << ",\n";
        out << "      \"mispredictions\": " << g.mispredictions
            << ",\n";
        out << "      \"misp_ki\": " << formatDouble(g.mispKi)
            << ",\n";
        out << "      \"static_predicted\": " << g.staticPredicted
            << ",\n";
        out << "      \"static_mispredictions\": "
            << g.staticMispredictions << ",\n";
        out << "      \"hints\": " << g.hints << ",\n";
        out << "      \"simulated_branches\": "
            << g.simulatedBranches << ",\n";
        out << "      \"lookups\": " << g.lookups << ",\n";
        out << "      \"collisions\": " << g.collisions << ",\n";
        out << "      \"constructive\": " << g.constructive
            << ",\n";
        out << "      \"destructive\": " << g.destructive << "\n";
        out << "    }" << (i + 1 < goldenSchemes.size() ? "," : "")
            << "\n";
    }
    out << "  }\n";
    out << "}\n";
    const Result<void> written = writeFileAtomic(path, out.str());
    ASSERT_TRUE(written.ok())
        << "write failed for " << path << ": "
        << (written.ok() ? "" : written.error().describe());
}

/**
 * Run every scheme through BOTH simulation paths — the replay entry
 * point (devirtualized kernels where the predictor is one of the
 * paper's five kinds, virtual fallback otherwise) and the virtual
 * stream interface — and compare each against the same checked-in
 * values under tests/golden/@p name.json. Pinning both paths to one
 * golden also pins them to each other. @p configure adapts the base
 * config per predictor (factory kind or makeDynamic extension);
 * @p expect_kernel asserts the replay run actually took the
 * devirtualized path.
 */
void
runGolden(const std::string &name,
          const std::function<void(ExperimentConfig &)> &configure,
          bool expect_kernel)
{
    SyntheticProgram source =
        buildProgram(goldenProgramConfig(), InputSet::Ref);
    const ReplayBuffer buffer = ReplayBuffer::materialize(
        source, std::max(goldenProfileBranches, goldenEvalBranches));
    ASSERT_EQ(buffer.size(),
              std::max(goldenProfileBranches, goldenEvalBranches));

    std::vector<GoldenStats> kernel_stats;
    std::vector<GoldenStats> virtual_stats;
    for (const StaticScheme scheme : goldenSchemes) {
        ExperimentConfig config = goldenExperimentConfig(
            PredictorKind::Gshare, scheme);
        configure(config);

        bool used_kernel = false;
        const ExperimentResult replayed = runExperimentReplay(
            &buffer, buffer, config, nullptr, &used_kernel);
        if (expect_kernel) {
            EXPECT_TRUE(used_kernel)
                << name << "/" << staticSchemeName(scheme)
                << " fell off the devirtualized path";
        }
        kernel_stats.push_back(fromResult(replayed));

        ReplayBuffer::Cursor profile_stream = buffer.cursor();
        ReplayBuffer::Cursor eval_stream = buffer.cursor();
        const ExperimentResult streamed = runExperimentStreams(
            profile_stream, eval_stream, config);
        virtual_stats.push_back(fromResult(streamed));
    }

    if (std::getenv("BPSIM_WRITE_GOLDEN") != nullptr) {
        writeGoldenFile(name, kernel_stats);
        // Even while regenerating, the two paths must agree.
        for (std::size_t i = 0; i < goldenSchemes.size(); ++i)
            expectMatchesGolden(
                kernel_stats[i], virtual_stats[i],
                staticSchemeName(goldenSchemes[i]) + " (paths)");
        return;
    }

    const std::string path = goldenPath(name);
    ASSERT_TRUE(std::ifstream(path).good())
        << path << " missing; regenerate with BPSIM_WRITE_GOLDEN=1";
    const JsonValue golden = JsonValue::parseFile(path);
    EXPECT_EQ(golden.at("schema").asString(), "bpsim-golden-v1");
    EXPECT_EQ(golden.at("predictor").asString(), name);
    EXPECT_EQ(jsonCount(golden, "size_bytes"), goldenSizeBytes);
    EXPECT_EQ(jsonCount(golden, "profile_branches"),
              goldenProfileBranches);
    EXPECT_EQ(jsonCount(golden, "eval_branches"),
              goldenEvalBranches);

    const JsonValue &cells = golden.at("cells");
    for (std::size_t i = 0; i < goldenSchemes.size(); ++i) {
        const std::string scheme = staticSchemeName(goldenSchemes[i]);
        const JsonValue *cell = cells.find(scheme);
        ASSERT_NE(cell, nullptr)
            << "no golden cell for " << scheme << " in " << path;
        const GoldenStats expected = fromJson(*cell);
        expectMatchesGolden(expected, kernel_stats[i],
                            scheme + " (kernel path)");
        expectMatchesGolden(expected, virtual_stats[i],
                            scheme + " (virtual path)");
    }
}

/**
 * One parameterized test per registered predictor: registering a new
 * predictor is all it takes to appear here — there is no hand-kept
 * enumeration to forget to extend. Kernel-capable entries must take
 * the devirtualized replay path; the rest pin the virtual fallback
 * against the same golden file.
 */
class GoldenTest : public ::testing::TestWithParam<std::string>
{
};

TEST_P(GoldenTest, PinsKernelAndVirtualPaths)
{
    const PredictorInfo *info =
        PredictorRegistry::instance().find(GetParam());
    ASSERT_NE(info, nullptr);
    runGolden(
        info->goldenFile,
        [info](ExperimentConfig &config) {
            config.predictor = info->name;
        },
        /*expect_kernel=*/info->kernelCapable);
}

INSTANTIATE_TEST_SUITE_P(
    Registry, GoldenTest,
    ::testing::ValuesIn(PredictorRegistry::instance().names()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        // gtest parameter names must be alphanumeric/underscore.
        std::string name = info.param;
        for (char &c : name)
            if (std::isalnum(static_cast<unsigned char>(c)) == 0)
                c = '_';
        return name;
    });

/*
 * Scenario goldens: for every registered predictor, one SMT and one
 * context-switch interleave of two pinned member programs sharing the
 * predictor, with the per-context attribution and the victim x
 * aggressor alias matrix pinned alongside the shared totals. Any
 * change to the interleave schedule, the context PC encoding, or the
 * attribution arithmetic shows up here as an exact-value diff.
 *
 * Regeneration works exactly like the plain goldens
 * (BPSIM_WRITE_GOLDEN=1); files land as tests/golden/scenario_*.json.
 */

constexpr std::size_t scenarioGoldenContexts = 2;
constexpr Count scenarioGoldenQuantum = 5'000;

const std::vector<ScenarioKind> scenarioGoldenKinds = {
    ScenarioKind::Smt,
    ScenarioKind::ContextSwitch,
};

const std::vector<StaticScheme> scenarioGoldenSchemes = {
    StaticScheme::None,
    StaticScheme::Static95,
};

/**
 * The two pinned tenants. Member 0 is the plain golden workload;
 * member 1 reshapes it (and reseeds) so the interleave genuinely
 * mixes two different branch populations rather than two clones.
 */
ProgramConfig
scenarioMemberConfig(std::size_t context)
{
    ProgramConfig cfg = goldenProgramConfig();
    if (context == 1) {
        cfg.name = "golden_b";
        cfg.seed = 0xb01d; // "bold"; arbitrary but pinned forever
        cfg.fracHighBias = 0.30;
        cfg.loopDensity = 0.20;
        cfg.meanTripCount = 20;
    }
    return cfg;
}

ScenarioSpec
scenarioGoldenSpec(ScenarioKind kind)
{
    ScenarioSpec spec;
    spec.kind = kind;
    spec.quantum = scenarioGoldenQuantum;
    return spec;
}

/** Scenario cell key inside the golden file ("smt/none", ...). */
std::string
scenarioCellKey(ScenarioKind kind, StaticScheme scheme)
{
    return scenarioKindName(kind) + "/" + staticSchemeName(scheme);
}

struct ScenarioGoldenCell
{
    GoldenStats totals;
    std::vector<ContextStats> contexts;
    std::vector<ContextAliasCell> matrix;
};

ScenarioGoldenCell
scenarioCellFromResult(const ExperimentResult &result)
{
    ScenarioGoldenCell cell;
    cell.totals = fromResult(result);
    cell.contexts = result.contextStats;
    cell.matrix = result.aliasMatrix;
    return cell;
}

ScenarioGoldenCell
scenarioCellFromJson(const JsonValue &cell)
{
    ScenarioGoldenCell g;
    g.totals = fromJson(cell);
    for (const JsonValue &ctx : cell.at("contexts").items()) {
        ContextStats stats;
        stats.branches = jsonCount(ctx, "branches");
        stats.instructions = jsonCount(ctx, "instructions");
        stats.mispredictions = jsonCount(ctx, "mispredictions");
        stats.staticPredicted = jsonCount(ctx, "static_predicted");
        stats.collisions = jsonCount(ctx, "collisions");
        g.contexts.push_back(stats);
    }
    for (const JsonValue &entry : cell.at("alias_matrix").items()) {
        const std::vector<JsonValue> &triple = entry.items();
        ContextAliasCell alias;
        alias.collisions = static_cast<Count>(triple[0].asNumber());
        alias.constructive = static_cast<Count>(triple[1].asNumber());
        alias.destructive = static_cast<Count>(triple[2].asNumber());
        g.matrix.push_back(alias);
    }
    return g;
}

void
expectMatchesScenarioGolden(const ScenarioGoldenCell &golden,
                            const ScenarioGoldenCell &got,
                            const std::string &path)
{
    expectMatchesGolden(golden.totals, got.totals, path);
    SCOPED_TRACE(path);
    ASSERT_EQ(golden.contexts.size(), got.contexts.size());
    for (std::size_t c = 0; c < golden.contexts.size(); ++c) {
        EXPECT_EQ(golden.contexts[c].branches,
                  got.contexts[c].branches)
            << "context " << c;
        EXPECT_EQ(golden.contexts[c].instructions,
                  got.contexts[c].instructions)
            << "context " << c;
        EXPECT_EQ(golden.contexts[c].mispredictions,
                  got.contexts[c].mispredictions)
            << "context " << c;
        EXPECT_EQ(golden.contexts[c].staticPredicted,
                  got.contexts[c].staticPredicted)
            << "context " << c;
        EXPECT_EQ(golden.contexts[c].collisions,
                  got.contexts[c].collisions)
            << "context " << c;
    }
    ASSERT_EQ(golden.matrix.size(), got.matrix.size());
    for (std::size_t i = 0; i < golden.matrix.size(); ++i) {
        EXPECT_EQ(golden.matrix[i].collisions, got.matrix[i].collisions)
            << "matrix cell " << i;
        EXPECT_EQ(golden.matrix[i].constructive,
                  got.matrix[i].constructive)
            << "matrix cell " << i;
        EXPECT_EQ(golden.matrix[i].destructive,
                  got.matrix[i].destructive)
            << "matrix cell " << i;
    }
}

void
writeScenarioGoldenFile(const std::string &name,
                        const std::vector<ScenarioGoldenCell> &cells)
{
    const std::string path = goldenPath(name);
    std::ostringstream out;
    out << "{\n";
    out << "  \"schema\": \"bpsim-golden-v1\",\n";
    out << "  \"predictor\": \"" << name << "\",\n";
    out << "  \"size_bytes\": " << goldenSizeBytes << ",\n";
    out << "  \"profile_branches\": " << goldenProfileBranches
        << ",\n";
    out << "  \"eval_branches\": " << goldenEvalBranches << ",\n";
    out << "  \"cells\": {\n";
    std::size_t index = 0;
    for (const ScenarioKind kind : scenarioGoldenKinds) {
        for (const StaticScheme scheme : scenarioGoldenSchemes) {
            const ScenarioGoldenCell &g = cells[index++];
            out << "    \"" << scenarioCellKey(kind, scheme)
                << "\": {\n";
            out << "      \"branches\": " << g.totals.branches
                << ",\n";
            out << "      \"instructions\": " << g.totals.instructions
                << ",\n";
            out << "      \"mispredictions\": "
                << g.totals.mispredictions << ",\n";
            out << "      \"misp_ki\": "
                << formatDouble(g.totals.mispKi) << ",\n";
            out << "      \"static_predicted\": "
                << g.totals.staticPredicted << ",\n";
            out << "      \"static_mispredictions\": "
                << g.totals.staticMispredictions << ",\n";
            out << "      \"hints\": " << g.totals.hints << ",\n";
            out << "      \"simulated_branches\": "
                << g.totals.simulatedBranches << ",\n";
            out << "      \"lookups\": " << g.totals.lookups << ",\n";
            out << "      \"collisions\": " << g.totals.collisions
                << ",\n";
            out << "      \"constructive\": " << g.totals.constructive
                << ",\n";
            out << "      \"destructive\": " << g.totals.destructive
                << ",\n";
            out << "      \"contexts\": [\n";
            for (std::size_t c = 0; c < g.contexts.size(); ++c) {
                const ContextStats &ctx = g.contexts[c];
                out << "        {\"branches\": " << ctx.branches
                    << ", \"instructions\": " << ctx.instructions
                    << ", \"mispredictions\": " << ctx.mispredictions
                    << ", \"static_predicted\": "
                    << ctx.staticPredicted
                    << ", \"collisions\": " << ctx.collisions << "}"
                    << (c + 1 < g.contexts.size() ? "," : "") << "\n";
            }
            out << "      ],\n";
            out << "      \"alias_matrix\": [\n";
            for (std::size_t i = 0; i < g.matrix.size(); ++i) {
                out << "        [" << g.matrix[i].collisions << ", "
                    << g.matrix[i].constructive << ", "
                    << g.matrix[i].destructive << "]"
                    << (i + 1 < g.matrix.size() ? "," : "") << "\n";
            }
            out << "      ]\n";
            const bool last = index == cells.size();
            out << "    }" << (last ? "" : ",") << "\n";
        }
    }
    out << "  }\n";
    out << "}\n";
    const Result<void> written = writeFileAtomic(path, out.str());
    ASSERT_TRUE(written.ok())
        << "write failed for " << path << ": "
        << (written.ok() ? "" : written.error().describe());
}

/**
 * One scenario golden per registered predictor, mirroring GoldenTest.
 * The replay path carries the attribution payload; the virtual stream
 * path computes no attribution but must agree with it on every shared
 * total, which pins the two paths to each other over the interleaved
 * stream too.
 */
class ScenarioGoldenTest : public ::testing::TestWithParam<std::string>
{
};

TEST_P(ScenarioGoldenTest, PinsAttributionAndTotals)
{
    const PredictorInfo *info =
        PredictorRegistry::instance().find(GetParam());
    ASSERT_NE(info, nullptr);
    const std::string name = "scenario_" + info->goldenFile;

    std::vector<ScenarioGoldenCell> cells;
    std::vector<GoldenStats> stream_totals;
    for (const ScenarioKind kind : scenarioGoldenKinds) {
        std::vector<SyntheticProgram> members;
        for (std::size_t c = 0; c < scenarioGoldenContexts; ++c)
            members.push_back(buildProgram(scenarioMemberConfig(c),
                                           InputSet::Ref));
        ScenarioWorkload workload(scenarioGoldenSpec(kind),
                                  std::move(members));
        const ReplayBuffer buffer = ReplayBuffer::materialize(
            workload,
            std::max(goldenProfileBranches, goldenEvalBranches));

        for (const StaticScheme scheme : scenarioGoldenSchemes) {
            ExperimentConfig config = goldenExperimentConfig(
                PredictorKind::Gshare, scheme);
            config.predictor = info->name;
            config.scenarioContexts = scenarioGoldenContexts;

            const ExperimentResult replayed =
                runExperimentReplay(&buffer, buffer, config);
            cells.push_back(scenarioCellFromResult(replayed));

            ReplayBuffer::Cursor profile_stream = buffer.cursor();
            ReplayBuffer::Cursor eval_stream = buffer.cursor();
            const ExperimentResult streamed = runExperimentStreams(
                profile_stream, eval_stream, config);
            stream_totals.push_back(fromResult(streamed));
        }
    }

    // Path agreement on the shared totals, golden or not.
    for (std::size_t i = 0; i < cells.size(); ++i)
        expectMatchesGolden(cells[i].totals, stream_totals[i],
                            name + " cell " + std::to_string(i) +
                                " (paths)");

    if (std::getenv("BPSIM_WRITE_GOLDEN") != nullptr) {
        writeScenarioGoldenFile(name, cells);
        return;
    }

    const std::string path = goldenPath(name);
    ASSERT_TRUE(std::ifstream(path).good())
        << path << " missing; regenerate with BPSIM_WRITE_GOLDEN=1";
    const JsonValue golden = JsonValue::parseFile(path);
    EXPECT_EQ(golden.at("schema").asString(), "bpsim-golden-v1");
    EXPECT_EQ(golden.at("predictor").asString(), name);

    const JsonValue &golden_cells = golden.at("cells");
    std::size_t index = 0;
    for (const ScenarioKind kind : scenarioGoldenKinds) {
        for (const StaticScheme scheme : scenarioGoldenSchemes) {
            const std::string key = scenarioCellKey(kind, scheme);
            const JsonValue *cell = golden_cells.find(key);
            ASSERT_NE(cell, nullptr)
                << "no golden cell for " << key << " in " << path;
            expectMatchesScenarioGolden(scenarioCellFromJson(*cell),
                                        cells[index++], key);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Registry, ScenarioGoldenTest,
    ::testing::ValuesIn(PredictorRegistry::instance().names()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string name = info.param;
        for (char &c : name)
            if (std::isalnum(static_cast<unsigned char>(c)) == 0)
                c = '_';
        return name;
    });

} // namespace
} // namespace bpsim
