/**
 * @file
 * Service-mode tests: protocol round-trips, daemon-vs-batch
 * bit-identity, idempotent response caching, restart resume,
 * deadline handling, per-request fault isolation, quarantine, and
 * load-shedding — all against an in-process ServiceServer talking
 * over real Unix domain sockets.
 *
 * The FaultInjector and the servers are process-wide state, so every
 * test runs in the ServiceTest fixture: each test gets its own
 * socket and state directory (wiped up front so reruns stay
 * deterministic) and TearDown disarms the injector.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <functional>
#include <future>
#include <thread>
#include <vector>

#include "core/checkpoint.hh"
#include "core/runner.hh"
#include "service/client.hh"
#include "service/protocol.hh"
#include "service/server.hh"
#include "support/fault.hh"

namespace bpsim
{
namespace
{

std::string
tempPath(const std::string &name)
{
    return ::testing::TempDir() + name;
}

/** Small but non-trivial sweep: 2 cells, one shared profile phase. */
service::SweepSpec
smallSweep()
{
    service::SweepSpec spec;
    spec.program = "compress";
    spec.predictor = "gshare";
    spec.sizes = {1024, 2048};
    spec.scheme = "static_95";
    spec.evalBranches = 120'000;
    spec.profileBranches = 60'000;
    return spec;
}

service::ServiceRequest
sweepRequest(std::string id, const service::SweepSpec &spec)
{
    service::ServiceRequest request;
    request.id = std::move(id);
    request.kind = service::RequestKind::Sweep;
    request.sweep = spec;
    return request;
}

service::ServiceRequest
statusRequest(std::string id)
{
    service::ServiceRequest request;
    request.id = std::move(id);
    request.kind = service::RequestKind::Status;
    return request;
}

/**
 * A one-shot executor gate: installed as ServiceOptions::
 * onExecuteBegin, it blocks the first request to reach the executor
 * until release() — so tests can hold the executor busy and fill the
 * admission queue deterministically, with no timing assumptions.
 */
class ExecutorGate
{
  public:
    ExecutorGate() : gate(barrier.get_future().share()) {}

    std::function<void()>
    hook()
    {
        return [this] {
            if (holding.exchange(false))
                gate.wait();
        };
    }

    void
    release()
    {
        if (!released.exchange(true))
            barrier.set_value();
    }

  private:
    std::promise<void> barrier;
    std::shared_future<void> gate;
    std::atomic<bool> holding{true};
    std::atomic<bool> released{false};
};

/** The daemon's answer must equal what the batch path computes, so
 * run the same compiled sweep through ExperimentRunner directly. */
MatrixResult
runDirect(const service::SweepSpec &spec)
{
    Result<service::CompiledSweep> compiled =
        service::compileSweep(spec);
    EXPECT_TRUE(compiled.ok());
    RunnerOptions options;
    options.threads = 1;
    ExperimentRunner runner(options);
    const std::size_t program = runner.addWorkload(
        std::move(compiled.value().program));
    for (std::size_t i = 0; i < compiled.value().configs.size(); ++i) {
        runner.addCell(program, compiled.value().configs[i],
                       compiled.value().labels[i]);
    }
    return runner.run();
}

void
expectSameStats(const SimStats &a, const SimStats &b)
{
    EXPECT_EQ(a.branches, b.branches);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.mispredictions, b.mispredictions);
    EXPECT_EQ(a.staticPredicted, b.staticPredicted);
    EXPECT_EQ(a.staticMispredictions, b.staticMispredictions);
    EXPECT_EQ(a.collisions.lookups, b.collisions.lookups);
    EXPECT_EQ(a.collisions.collisions, b.collisions.collisions);
    EXPECT_EQ(a.collisions.constructive, b.collisions.constructive);
    EXPECT_EQ(a.collisions.destructive, b.collisions.destructive);
}

class ServiceTest : public ::testing::Test
{
  protected:
    void TearDown() override { FaultInjector::instance().disarm(); }

    /** Fresh per-test options: unique socket + wiped state dir. */
    service::ServiceOptions
    makeOptions(const std::string &tag)
    {
        service::ServiceOptions options;
        options.socketPath = tempPath("bpsvc_" + tag + ".sock");
        options.stateDir = tempPath("bpsvc_" + tag + ".state");
        options.threads = 2;
        options.allowFaultInjection = true;
        std::error_code ignored;
        std::filesystem::remove_all(options.stateDir, ignored);
        std::filesystem::remove(options.socketPath, ignored);
        return options;
    }

    service::ServiceClient
    connectTo(const service::ServiceOptions &options)
    {
        Result<service::ServiceClient> client =
            service::ServiceClient::connect(options.socketPath);
        EXPECT_TRUE(client.ok());
        return std::move(client.value());
    }

    service::ServiceResponse
    call(const service::ServiceOptions &options,
         const service::ServiceRequest &request)
    {
        service::ServiceClient client = connectTo(options);
        Result<service::ServiceResponse> response =
            client.call(request);
        EXPECT_TRUE(response.ok());
        return std::move(response.value());
    }

    /** Poll the status op (answered inline, never queued) until
     * @p ready accepts a snapshot; lets tests observe the executor
     * and the admission queue without perturbing them. */
    void
    awaitStatus(
        const service::ServiceOptions &options,
        const std::function<bool(const service::ServiceResponse &)>
            &ready)
    {
        for (int spin = 0; spin < 5000; ++spin) {
            const service::ServiceResponse status = call(
                options,
                statusRequest("poll-" + std::to_string(spin)));
            if (ready(status))
                return;
            std::this_thread::sleep_for(
                std::chrono::milliseconds(1));
        }
        FAIL() << "daemon never reached the awaited state";
    }
};

TEST_F(ServiceTest, RequestRoundTripsThroughTheWire)
{
    service::ServiceRequest request =
        sweepRequest("round-trip", smallSweep());
    request.deadlineMs = 1500;
    request.faultSpec = "cell:2:internal:1";
    request.sweep.profileInput = "train";
    request.sweep.filterUnstable = true;
    request.sweep.cutoff = 0.875;

    Result<service::ServiceRequest> parsed =
        service::parseRequest(service::renderRequest(request));
    ASSERT_TRUE(parsed.ok());
    const service::ServiceRequest &back = parsed.value();
    EXPECT_EQ(back.id, request.id);
    EXPECT_EQ(back.kind, request.kind);
    EXPECT_EQ(back.deadlineMs, request.deadlineMs);
    EXPECT_EQ(back.faultSpec, request.faultSpec);
    EXPECT_EQ(back.sweep.program, request.sweep.program);
    EXPECT_EQ(back.sweep.sizes, request.sweep.sizes);
    EXPECT_EQ(back.sweep.scheme, request.sweep.scheme);
    EXPECT_EQ(back.sweep.profileInput, request.sweep.profileInput);
    EXPECT_EQ(back.sweep.filterUnstable,
              request.sweep.filterUnstable);
    EXPECT_DOUBLE_EQ(back.sweep.cutoff, request.sweep.cutoff);

    // The fingerprint is derived from the parsed spec, so a
    // round-tripped request compiles to the same idempotency key.
    Result<service::CompiledSweep> a =
        service::compileSweep(request.sweep);
    Result<service::CompiledSweep> b =
        service::compileSweep(back.sweep);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a.value().requestFingerprint,
              b.value().requestFingerprint);
}

TEST_F(ServiceTest, MalformedRequestsAreStructuredErrors)
{
    EXPECT_FALSE(service::parseRequest("not json").ok());
    EXPECT_FALSE(service::parseRequest("{}").ok());
    EXPECT_FALSE(
        service::parseRequest(R"({"schema": "wrong", "id": "x"})")
            .ok());
    // Missing id.
    EXPECT_FALSE(service::parseRequest(
                     R"({"schema": "bpsim-request-v1", "op": "status"})")
                     .ok());
    // Cancel without a target.
    EXPECT_FALSE(
        service::parseRequest(
            R"({"schema": "bpsim-request-v1", "id": "c", "op": "cancel"})")
            .ok());
    // Unknown names fail compile, not the daemon.
    service::SweepSpec bad = smallSweep();
    bad.program = "no-such-program";
    Result<service::CompiledSweep> compiled =
        service::compileSweep(bad);
    ASSERT_FALSE(compiled.ok());
    EXPECT_EQ(compiled.error().code(), ErrorCode::ConfigInvalid);
}

TEST_F(ServiceTest, DaemonResultsMatchBatchModeBitIdentically)
{
    const MatrixResult direct = runDirect(smallSweep());

    service::ServiceOptions options = makeOptions("diff");
    service::ServiceServer server(options);
    ASSERT_TRUE(server.start().ok());

    const service::ServiceResponse response =
        call(options, sweepRequest("diff-1", smallSweep()));
    ASSERT_TRUE(response.ok);
    EXPECT_EQ(response.executed, 2u);
    EXPECT_EQ(response.restored, 0u);
    ASSERT_EQ(response.cells.size(), direct.cells.size());
    for (std::size_t i = 0; i < direct.cells.size(); ++i) {
        expectSameStats(response.cells[i].result.stats,
                        direct.cells[i].result.stats);
        EXPECT_EQ(response.cells[i].result.hintCount,
                  direct.cells[i].result.hintCount);
        EXPECT_EQ(response.cells[i].result.simulatedBranches,
                  direct.cells[i].result.simulatedBranches);
    }
}

TEST_F(ServiceTest, ResubmitIsServedFromTheResponseCache)
{
    service::ServiceOptions options = makeOptions("cache");
    service::ServiceServer server(options);
    ASSERT_TRUE(server.start().ok());

    const service::ServiceResponse first =
        call(options, sweepRequest("cache-1", smallSweep()));
    ASSERT_TRUE(first.ok);
    EXPECT_EQ(first.executed, 2u);

    const service::ServiceResponse second =
        call(options, sweepRequest("cache-2", smallSweep()));
    ASSERT_TRUE(second.ok);
    EXPECT_EQ(second.executed, 0u);
    EXPECT_EQ(second.restored, 2u);
    EXPECT_EQ(second.fingerprint, first.fingerprint);
    ASSERT_EQ(second.cells.size(), first.cells.size());
    for (std::size_t i = 0; i < first.cells.size(); ++i) {
        EXPECT_EQ(second.cells[i].fingerprint,
                  first.cells[i].fingerprint);
        expectSameStats(second.cells[i].result.stats,
                        first.cells[i].result.stats);
    }
}

TEST_F(ServiceTest, RestartedDaemonResumesFromItsStateDir)
{
    const MatrixResult direct = runDirect(smallSweep());
    service::ServiceOptions options = makeOptions("restart");

    // Instance 1: a poisoned request fails one cell but checkpoints
    // the other — interrupted progress on disk.
    {
        service::ServiceServer server(options);
        ASSERT_TRUE(server.start().ok());
        service::ServiceRequest poisoned =
            sweepRequest("restart-1", smallSweep());
        poisoned.faultSpec = "cell:1:internal:1";
        const service::ServiceResponse response =
            call(options, poisoned);
        EXPECT_FALSE(response.ok);
        ASSERT_TRUE(response.failure.has_value());
        EXPECT_EQ(response.failure->code(), ErrorCode::CellFailed);
        EXPECT_EQ(response.cells.size(), 1u);
        EXPECT_EQ(response.failed, 1u);
        server.requestDrain();
        server.waitUntilStopped();
    }

    // Instance 2, same state dir: the resubmit restores the finished
    // cell, executes only the failed one, and the merged result is
    // bit-identical to an uninterrupted batch run.
    {
        service::ServiceServer server(options);
        ASSERT_TRUE(server.start().ok());
        const service::ServiceResponse response =
            call(options, sweepRequest("restart-2", smallSweep()));
        ASSERT_TRUE(response.ok);
        EXPECT_EQ(response.restored, 1u);
        EXPECT_EQ(response.executed, 1u);
        ASSERT_EQ(response.cells.size(), direct.cells.size());
        for (std::size_t i = 0; i < direct.cells.size(); ++i) {
            expectSameStats(response.cells[i].result.stats,
                            direct.cells[i].result.stats);
        }
    }
}

TEST_F(ServiceTest, QueuedDeadlineExpiresWithoutTouchingTheCache)
{
    service::ServiceOptions options = makeOptions("deadline");
    ExecutorGate executor_gate;
    options.onExecuteBegin = executor_gate.hook();
    service::ServiceServer server(options);
    ASSERT_TRUE(server.start().ok());

    // Hold the executor on an occupant request (distinct
    // fingerprint) so the deadline request waits in the admission
    // queue past its deadline.
    service::SweepSpec occupant_sweep = smallSweep();
    occupant_sweep.sizes = {4096};
    std::thread occupant([&] {
        call(options, sweepRequest("deadline-long", occupant_sweep));
    });
    awaitStatus(options, [](const service::ServiceResponse &s) {
        return s.active == 1;
    });

    service::ServiceResponse expired;
    std::thread hurried_caller([&] {
        service::ServiceRequest hurried =
            sweepRequest("deadline-1", smallSweep());
        hurried.deadlineMs = 1;
        expired = call(options, hurried);
    });
    awaitStatus(options, [](const service::ServiceResponse &s) {
        return s.queueDepth == 1;
    });
    // The deadline was armed at admission; let it lapse before the
    // executor can reach the request.
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    executor_gate.release();
    occupant.join();
    hurried_caller.join();

    EXPECT_FALSE(expired.ok);
    ASSERT_TRUE(expired.failure.has_value());
    EXPECT_EQ(expired.failure->code(), ErrorCode::DeadlineExceeded);
    EXPECT_TRUE(expired.cells.empty());

    // The expiry left no partial state behind for this fingerprint,
    // and a deadline-free resubmit completes from scratch.
    const service::ServiceResponse retried =
        call(options, sweepRequest("deadline-2", smallSweep()));
    ASSERT_TRUE(retried.ok);
    EXPECT_EQ(retried.executed, 2u);
    EXPECT_EQ(retried.fingerprint, expired.fingerprint);
}

TEST_F(ServiceTest, RepeatedCrashesQuarantineTheFingerprint)
{
    service::ServiceOptions options = makeOptions("quarantine");
    options.quarantineThreshold = 2;
    service::ServiceServer server(options);
    ASSERT_TRUE(server.start().ok());

    service::SweepSpec sweep = smallSweep();
    sweep.sizes = {1024};
    for (int attempt = 0; attempt < 2; ++attempt) {
        service::ServiceRequest poisoned = sweepRequest(
            "quarantine-" + std::to_string(attempt), sweep);
        poisoned.faultSpec = "cell:1:internal:9";
        const service::ServiceResponse response =
            call(options, poisoned);
        EXPECT_FALSE(response.ok);
    }

    // Strike threshold reached: even a healthy request for the same
    // fingerprint is rejected at admission with config_invalid.
    const service::ServiceResponse rejected =
        call(options, sweepRequest("quarantine-clean", sweep));
    EXPECT_FALSE(rejected.ok);
    ASSERT_TRUE(rejected.failure.has_value());
    EXPECT_EQ(rejected.failure->code(), ErrorCode::ConfigInvalid);

    // A different fingerprint is unaffected.
    service::SweepSpec other = smallSweep();
    other.sizes = {4096};
    const service::ServiceResponse healthy =
        call(options, sweepRequest("quarantine-other", other));
    EXPECT_TRUE(healthy.ok);
}

TEST_F(ServiceTest, PoisonedRequestDoesNotContaminateAConcurrentOne)
{
    const MatrixResult direct = runDirect(smallSweep());

    service::ServiceOptions options = makeOptions("isolate");
    service::ServiceServer server(options);
    ASSERT_TRUE(server.start().ok());

    service::SweepSpec poisoned_sweep = smallSweep();
    poisoned_sweep.sizes = {4096, 8192};

    service::ServiceResponse good_response;
    service::ServiceResponse bad_response;
    std::thread good([&] {
        good_response =
            call(options, sweepRequest("isolate-good", smallSweep()));
    });
    std::thread bad([&] {
        service::ServiceRequest poisoned =
            sweepRequest("isolate-bad", poisoned_sweep);
        poisoned.faultSpec = "cell:1:internal:9";
        bad_response = call(options, poisoned);
    });
    good.join();
    bad.join();

    EXPECT_FALSE(bad_response.ok);
    ASSERT_TRUE(good_response.ok);
    ASSERT_EQ(good_response.cells.size(), direct.cells.size());
    for (std::size_t i = 0; i < direct.cells.size(); ++i) {
        expectSameStats(good_response.cells[i].result.stats,
                        direct.cells[i].result.stats);
    }
}

TEST_F(ServiceTest, FullAdmissionQueueShedsWithARetryHint)
{
    service::ServiceOptions options = makeOptions("shed");
    options.queueLimit = 1;
    ExecutorGate executor_gate;
    options.onExecuteBegin = executor_gate.hook();
    service::ServiceServer server(options);
    ASSERT_TRUE(server.start().ok());

    service::SweepSpec occupant_sweep = smallSweep();
    occupant_sweep.sizes = {1024};
    std::thread occupant([&] {
        call(options, sweepRequest("shed-long", occupant_sweep));
    });
    awaitStatus(options, [](const service::ServiceResponse &s) {
        return s.active == 1;
    });
    service::SweepSpec waiter_sweep = smallSweep();
    waiter_sweep.sizes = {2048};
    std::thread waiter([&] {
        call(options, sweepRequest("shed-queued", waiter_sweep));
    });
    awaitStatus(options, [](const service::ServiceResponse &s) {
        return s.queueDepth == 1;
    });

    // Executor busy + one request queued = the next is shed.
    service::SweepSpec third = smallSweep();
    third.sizes = {16384};
    const service::ServiceResponse shed =
        call(options, sweepRequest("shed-extra", third));
    EXPECT_FALSE(shed.ok);
    ASSERT_TRUE(shed.failure.has_value());
    EXPECT_EQ(shed.failure->code(), ErrorCode::ResourceExhausted);
    EXPECT_GT(shed.retryAfterMs, 0u);

    executor_gate.release();
    occupant.join();
    waiter.join();
}

TEST_F(ServiceTest, DuplicateRequestIdsAreRejected)
{
    service::ServiceOptions options = makeOptions("dup");
    ExecutorGate executor_gate;
    options.onExecuteBegin = executor_gate.hook();
    service::ServiceServer server(options);
    ASSERT_TRUE(server.start().ok());

    std::thread occupant([&] {
        call(options, sweepRequest("dup-id", smallSweep()));
    });
    awaitStatus(options, [](const service::ServiceResponse &s) {
        return s.active == 1;
    });
    const service::ServiceResponse duplicate =
        call(options, sweepRequest("dup-id", smallSweep()));
    EXPECT_FALSE(duplicate.ok);
    ASSERT_TRUE(duplicate.failure.has_value());
    EXPECT_EQ(duplicate.failure->code(), ErrorCode::ConfigInvalid);
    executor_gate.release();
    occupant.join();
}

TEST_F(ServiceTest, StatusReportsStateAndShutdownDrains)
{
    service::ServiceOptions options = makeOptions("drain");
    service::ServiceServer server(options);
    ASSERT_TRUE(server.start().ok());

    service::ServiceRequest status;
    status.id = "status-1";
    status.kind = service::RequestKind::Status;
    const service::ServiceResponse snapshot = call(options, status);
    ASSERT_TRUE(snapshot.ok);
    EXPECT_EQ(snapshot.state, "listening");
    EXPECT_EQ(snapshot.queueLimit, options.queueLimit);

    service::ServiceRequest shutdown;
    shutdown.id = "shutdown-1";
    shutdown.kind = service::RequestKind::Shutdown;
    const service::ServiceResponse bye = call(options, shutdown);
    EXPECT_TRUE(bye.ok);
    server.waitUntilStopped();

    // The socket is gone: a drained daemon accepts nothing.
    EXPECT_FALSE(
        service::ServiceClient::connect(options.socketPath).ok());
    EXPECT_EQ(server.stats().completed, 0u);
}

} // namespace
} // namespace bpsim
