/**
 * @file
 * Tests for the extensions beyond the paper's core evaluation: the
 * agree predictor (its §3 related-work dynamic alternative), the
 * per-branch collision attribution plumbing, and the collision-aware
 * Static_Alias selection scheme (the paper's stated future work).
 */

#include <gtest/gtest.h>

#include <memory>

#include "core/engine.hh"
#include "core/experiment.hh"
#include "predictor/agree.hh"
#include "predictor/factory.hh"
#include "predictor/gshare.hh"
#include "predictor/ideal_gshare.hh"
#include "predictor/tournament.hh"
#include "support/bits.hh"
#include "support/random.hh"
#include "trace/memory_trace.hh"
#include "workload/specint.hh"

namespace bpsim
{
namespace
{

/** Drive one (pc, outcome) through the protocol. */
bool
step(BranchPredictor &predictor, Addr pc, bool taken)
{
    const bool prediction = predictor.predict(pc);
    predictor.update(pc, taken);
    predictor.updateHistory(taken);
    return prediction == taken;
}

TEST(AgreeTest, FactoryConstructs)
{
    auto predictor = makePredictor("agree:8192");
    EXPECT_EQ(predictor->name(), "agree");
    EXPECT_EQ(predictor->sizeBytes(), 8192u);
}

TEST(AgreeTest, BiasBitLatchesFirstOutcome)
{
    Agree predictor(2048);
    EXPECT_EQ(predictor.biasBitCount(), 0u);
    step(predictor, 0x100, true);
    EXPECT_EQ(predictor.biasBitCount(), 1u);
    // Steady taken branch: counters stay in "agree", predict taken.
    double correct = 0;
    for (int i = 0; i < 500; ++i)
        correct += step(predictor, 0x100, true);
    EXPECT_GT(correct / 500.0, 0.99);
}

TEST(AgreeTest, ResetClearsBiasBits)
{
    Agree predictor(2048);
    step(predictor, 0x100, true);
    predictor.reset();
    EXPECT_EQ(predictor.biasBitCount(), 0u);
}

TEST(AgreeTest, CollidingOppositeBranchesStayConstructive)
{
    // The agree predictor's raison d'etre: two opposite-direction
    // biased branches that share counters both "agree" with their own
    // bias bits, so the sharing does not destroy either. Force heavy
    // sharing with a tiny table and many branches.
    const int branches = 2048;
    auto run = [&](auto &&make) {
        auto predictor = make();
        Rng rng(5);
        Count correct = 0;
        Count total = 0;
        for (int round = 0; round < 60; ++round) {
            for (int b = 0; b < branches; ++b) {
                const Addr pc = 0x1000 + 4 * b;
                const bool majority = (mix64(b) & 1) != 0;
                const bool taken =
                    rng.chance(0.98) ? majority : !majority;
                correct += step(*predictor, pc, taken);
                ++total;
            }
        }
        return static_cast<double>(correct) /
               static_cast<double>(total);
    };
    const double agree = run([] {
        return std::make_unique<Agree>(256);
    });
    const double gshare = run([] {
        return std::make_unique<Gshare>(256);
    });
    EXPECT_GT(agree, gshare + 0.02);
    EXPECT_GT(agree, 0.93);
}

TEST(CollisionAttributionTest, ProfileReceivesCollisions)
{
    // Two branches forced onto the same bimodal counter.
    auto predictor = makePredictor(PredictorKind::Bimodal, 2048);
    MemoryTrace trace;
    const std::size_t entries = 8192; // 2 KB of 2-bit counters
    for (int i = 0; i < 50; ++i) {
        trace.append({0x1000, true, 1});
        trace.append({0x1000 + 4 * entries, false, 1}); // same index
    }
    ProfileDb profile;
    SimOptions options;
    options.profile = &profile;
    simulate(*predictor, trace, options);

    ASSERT_NE(profile.find(0x1000), nullptr);
    // Each lookup after the first alternation collides.
    EXPECT_GT(profile.find(0x1000)->collisions, 40u);
    EXPECT_GT(profile.find(0x1000)->collisionRate(), 0.5);
}

TEST(CollisionAttributionTest, SoloBranchHasNoCollisions)
{
    auto predictor = makePredictor(PredictorKind::Bimodal, 2048);
    MemoryTrace trace;
    for (int i = 0; i < 50; ++i)
        trace.append({0x1000, true, 1});
    ProfileDb profile;
    SimOptions options;
    options.profile = &profile;
    simulate(*predictor, trace, options);
    EXPECT_EQ(profile.find(0x1000)->collisions, 0u);
}

TEST(StaticAliasTest, SelectsContestedBiasedBranchesOnly)
{
    ProfileDb db;
    auto add = [&](Addr pc, double taken_rate, Count collisions) {
        for (int i = 0; i < 100; ++i) {
            db.recordOutcome(pc, i < 100 * taken_rate);
            db.recordPrediction(pc, true);
        }
        db.recordCollisions(pc, collisions);
    };
    add(0xa0, 0.99, 50); // biased + contested: selected
    add(0xb0, 0.99, 0);  // biased + private: not selected
    add(0xc0, 0.50, 80); // contested but unbiased: not selected

    HintDb hints = selectStaticAlias(db);
    EXPECT_EQ(hints.size(), 1u);
    EXPECT_TRUE(hints.contains(0xa0));
}

TEST(StaticAliasTest, SchemeNameRoundTrip)
{
    EXPECT_EQ(staticSchemeName(StaticScheme::StaticAlias),
              "static_alias");
    EXPECT_EQ(staticSchemeFromName("static_alias"),
              StaticScheme::StaticAlias);
}

TEST(StaticAliasTest, EndToEndReducesMispredictions)
{
    // On the alias-dominated gcc stand-in at a small size, the
    // collision-aware scheme must beat the no-static baseline.
    SyntheticProgram program =
        makeSpecProgram(SpecProgram::Gcc, InputSet::Ref);
    ExperimentConfig config;
    config.kind = PredictorKind::Gshare;
    config.sizeBytes = 2048;
    config.profileBranches = 400000;
    config.evalBranches = 600000;

    config.scheme = StaticScheme::None;
    const double base = runExperiment(program, config).stats.mispKi();
    config.scheme = StaticScheme::StaticAlias;
    const ExperimentResult with = runExperiment(program, config);

    EXPECT_GT(with.hintCount, 10u);
    EXPECT_LT(with.stats.mispKi(), base);
}

TEST(TournamentTest, CanonicalSizing)
{
    // A ~4 KB budget reproduces the 21264 configuration: 1K local
    // histories, 4K-entry global and choice tables.
    Tournament predictor(4096);
    EXPECT_EQ(predictor.localHistoryEntries(), 1024u);
    EXPECT_EQ(predictor.globalEntries(), 4096u);
    EXPECT_LE(predictor.sizeBytes(), 4096u);
    EXPECT_GE(predictor.sizeBytes(), 3000u);
}

TEST(TournamentTest, LocalComponentLearnsPerBranchPattern)
{
    // A short repeating per-branch pattern is invisible to the
    // global component when interleaved with noise branches, but the
    // local history nails it.
    Tournament predictor(4096);
    Rng rng(9);
    Count correct = 0;
    Count measured = 0;
    for (int i = 0; i < 30000; ++i) {
        // Noise branch with random outcome.
        const Addr noise_pc = 0x9000 + 4 * rng.nextBelow(64);
        const bool noise_taken = rng.chance(0.5);
        predictor.predict(noise_pc);
        predictor.update(noise_pc, noise_taken);
        predictor.updateHistory(noise_taken);

        // Pattern branch: period-3 TTN.
        const bool taken = i % 3 != 2;
        const bool prediction = predictor.predict(0x100);
        predictor.update(0x100, taken);
        predictor.updateHistory(taken);
        if (i > 5000) {
            ++measured;
            correct += prediction == taken;
        }
    }
    EXPECT_GT(static_cast<double>(correct) / measured, 0.95);
}

TEST(TournamentTest, FactoryAndReset)
{
    auto predictor = makePredictor("tournament:8192");
    EXPECT_EQ(predictor->name(), "tournament");
    for (int i = 0; i < 100; ++i)
        step(*predictor, 0x100, true);
    const bool warm = predictor->predict(0x100);
    predictor->reset();
    predictor->reset(); // idempotent
    for (int i = 0; i < 100; ++i)
        step(*predictor, 0x100, true);
    EXPECT_EQ(predictor->predict(0x100), warm);
}

TEST(IdealGshareTest, NeverAliases)
{
    // Thousands of conflicting branches: the ideal predictor keeps
    // them all apart and converges to each branch's bias.
    IdealGshare predictor(13);
    Rng rng(11);
    Count correct = 0;
    Count total = 0;
    for (int round = 0; round < 40; ++round) {
        for (int b = 0; b < 4096; ++b) {
            const Addr pc = 0x1000 + 4 * b;
            const bool taken = (mix64(b) & 1) != 0;
            correct += step(predictor, pc, taken);
            ++total;
        }
    }
    EXPECT_GT(static_cast<double>(correct) / total, 0.97);
    EXPECT_EQ(predictor.collisionStats().collisions, 0u);
    EXPECT_GT(predictor.tableEntries(), 4000u);
}

TEST(IdealGshareTest, LowerBoundsRealGshare)
{
    // On a real workload the ideal predictor must not lose to the
    // same-history real gshare.
    SyntheticProgram program =
        makeSpecProgram(SpecProgram::Gcc, InputSet::Ref);
    SimOptions options;
    options.maxBranches = 300000;

    Gshare real(4096); // 13-bit history
    const double real_misp =
        simulate(real, program, options).mispKi();
    IdealGshare ideal(13);
    const double ideal_misp =
        simulate(ideal, program, options).mispKi();
    EXPECT_LT(ideal_misp, real_misp);
}

} // namespace
} // namespace bpsim
