/**
 * @file
 * Fault-tolerance tests: the injector itself, exception-safe task
 * pools, per-cell isolation and retry policy in the matrix runner,
 * checkpoint/resume bit-identity, and journal bracket invariants in
 * the presence of failures.
 *
 * The FaultInjector is process-wide state, so every test that arms it
 * runs in the FaultTest fixture, whose TearDown disarms — a failing
 * test must not leak an armed injector into its neighbours.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/checkpoint.hh"
#include "core/runner.hh"
#include "obs/run_journal.hh"
#include "support/fault.hh"
#include "workload/specint.hh"

namespace bpsim
{
namespace
{

constexpr Count testProfileBranches = 60'000;
constexpr Count testEvalBranches = 120'000;

/** Label of the cell the targeted-fault tests aim at (cell index 1
 * of the test matrix below). */
constexpr const char *targetLabel = "compress/gshare:2048/static_95";
constexpr std::size_t targetIndex = 1;

ExperimentConfig
testConfig(PredictorKind kind, StaticScheme scheme)
{
    ExperimentConfig config;
    config.kind = kind;
    config.sizeBytes = 2048;
    config.scheme = scheme;
    config.profileBranches = testProfileBranches;
    config.evalBranches = testEvalBranches;
    return config;
}

/** One program x 2 kinds x 3 schemes = 6 cells, 2 profile phases. */
void
addTestCells(ExperimentRunner &runner)
{
    const std::size_t program = runner.addProgram(
        makeSpecProgram(SpecProgram::Compress, InputSet::Ref));
    for (const auto kind :
         {PredictorKind::Gshare, PredictorKind::Bimodal}) {
        for (const auto scheme :
             {StaticScheme::None, StaticScheme::Static95,
              StaticScheme::StaticAcc}) {
            runner.addCell(program, testConfig(kind, scheme));
        }
    }
}

MatrixResult
runMatrix(RunnerOptions options)
{
    ExperimentRunner runner(options);
    addTestCells(runner);
    return runner.run();
}

RunnerOptions
threadOptions(unsigned threads)
{
    RunnerOptions options;
    options.threads = threads;
    return options;
}

/** Fault-free single-thread run all failure tests compare against. */
const MatrixResult &
cleanReference()
{
    static const MatrixResult clean = runMatrix(threadOptions(1));
    return clean;
}

void
expectSameStats(const SimStats &a, const SimStats &b)
{
    EXPECT_EQ(a.branches, b.branches);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.mispredictions, b.mispredictions);
    EXPECT_EQ(a.staticPredicted, b.staticPredicted);
    EXPECT_EQ(a.staticMispredictions, b.staticMispredictions);
    EXPECT_EQ(a.collisions.lookups, b.collisions.lookups);
    EXPECT_EQ(a.collisions.collisions, b.collisions.collisions);
    EXPECT_EQ(a.collisions.constructive, b.collisions.constructive);
    EXPECT_EQ(a.collisions.destructive, b.collisions.destructive);
}

void
expectSameDeterministicFields(const CellResult &a, const CellResult &b)
{
    expectSameStats(a.result.stats, b.result.stats);
    EXPECT_EQ(a.result.hintCount, b.result.hintCount);
    EXPECT_EQ(a.result.simulatedBranches, b.result.simulatedBranches);
    EXPECT_EQ(a.usedKernel, b.usedKernel);
    EXPECT_EQ(a.profileCached, b.profileCached);
}

std::string
tempPath(const std::string &name)
{
    return ::testing::TempDir() + name;
}

class FaultTest : public ::testing::Test
{
  protected:
    void TearDown() override { FaultInjector::instance().disarm(); }
};

TEST_F(FaultTest, GoodSpecsParse)
{
    FaultInjector &injector = FaultInjector::instance();
    ASSERT_TRUE(injector.armFromSpec("cell:2").ok());
    EXPECT_TRUE(injector.armed());

    ASSERT_TRUE(
        injector.armFromSpec("profile_phase:1:resource_exhausted:3")
            .ok());
    EXPECT_TRUE(injector.armed());
}

TEST_F(FaultTest, BadSpecsAreRejected)
{
    FaultInjector &injector = FaultInjector::instance();
    for (const char *spec :
         {"", "cell", ":1", "cell:0", "cell:abc", "cell:1:bogus_code",
          "cell:1:internal:0", "cell:1:internal:x",
          "cell:1:internal:2:extra"}) {
        const Result<void> armed = injector.armFromSpec(spec);
        ASSERT_FALSE(armed.ok()) << "spec '" << spec << "' parsed";
        EXPECT_EQ(armed.error().code(), ErrorCode::ConfigInvalid)
            << "spec '" << spec << "'";
    }
}

TEST_F(FaultTest, FiresOnConfiguredHitWindow)
{
    FaultInjector &injector = FaultInjector::instance();
    injector.arm("p", 2, ErrorCode::CellFailed, 2);

    EXPECT_NO_THROW(injector.onHit("p", "one"));
    try {
        injector.onHit("p", "two");
        FAIL() << "second hit did not fire";
    } catch (const ErrorException &caught) {
        EXPECT_EQ(caught.error().code(), ErrorCode::CellFailed);
        EXPECT_NE(
            caught.error().message().find("injected fault at p"),
            std::string::npos);
    }
    EXPECT_THROW(injector.onHit("p", "three"), ErrorException);
    EXPECT_NO_THROW(injector.onHit("p", "four")); // window closed
    EXPECT_EQ(injector.hits("p"), 4u);

    // Hits of other points neither count nor fire.
    EXPECT_NO_THROW(injector.onHit("q", "two"));
    EXPECT_EQ(injector.hits("q"), 0u);
}

TEST_F(FaultTest, ContextMatchTargetsOneUnit)
{
    FaultInjector &injector = FaultInjector::instance();
    injector.arm("cell", 1, ErrorCode::Internal, 1, "go/gshare");

    // Non-matching contexts are not even counted as hits, so the
    // targeting is independent of thread interleaving.
    EXPECT_NO_THROW(injector.onHit("cell", "compress/bimodal:2048"));
    EXPECT_EQ(injector.hits("cell"), 0u);

    try {
        injector.onHit("cell", "go/gshare:2048/static_95");
        FAIL() << "matching hit did not fire";
    } catch (const ErrorException &caught) {
        ASSERT_EQ(caught.error().context().size(), 1u);
        EXPECT_EQ(caught.error().context()[0],
                  "go/gshare:2048/static_95");
    }
}

TEST_F(FaultTest, DisarmStopsFiring)
{
    FaultInjector &injector = FaultInjector::instance();
    injector.arm("p", 1);
    injector.disarm();
    EXPECT_FALSE(injector.armed());
    EXPECT_NO_THROW(faultPoint("p", "anything"));
    EXPECT_EQ(injector.hits("p"), 0u);
}

TEST(TaskPoolFaultTest, RunCollectCapturesPerTask)
{
    for (const unsigned threads : {1u, 2u, 8u}) {
        TaskPool pool(threads);
        std::atomic<int> completed{0};
        std::vector<std::function<void()>> tasks;
        for (int i = 0; i < 16; ++i) {
            tasks.push_back([i, &completed] {
                if (i == 5)
                    throw std::runtime_error("task five failed");
                completed.fetch_add(1, std::memory_order_relaxed);
            });
        }
        const std::vector<std::exception_ptr> errors =
            pool.runCollect(std::move(tasks));

        // The throwing task never terminates the pool: every other
        // task still drains, and only slot 5 holds an exception.
        EXPECT_EQ(completed.load(), 15) << threads << " threads";
        ASSERT_EQ(errors.size(), 16u);
        for (std::size_t i = 0; i < errors.size(); ++i) {
            if (i == 5)
                EXPECT_TRUE(errors[i]) << threads << " threads";
            else
                EXPECT_FALSE(errors[i])
                    << "slot " << i << ", " << threads << " threads";
        }
        EXPECT_THROW(std::rethrow_exception(errors[5]),
                     std::runtime_error);
    }
}

TEST(TaskPoolFaultTest, RunRethrowsFirstFailureByTaskOrder)
{
    for (const unsigned threads : {1u, 2u, 8u}) {
        TaskPool pool(threads);
        std::atomic<int> completed{0};
        std::vector<std::function<void()>> tasks;
        for (int i = 0; i < 12; ++i) {
            tasks.push_back([i, &completed] {
                if (i == 3)
                    raise(Error(ErrorCode::Internal, "task3"));
                if (i == 7)
                    raise(Error(ErrorCode::Internal, "task7"));
                completed.fetch_add(1, std::memory_order_relaxed);
            });
        }
        try {
            pool.run(std::move(tasks));
            FAIL() << "run() swallowed the failures";
        } catch (const ErrorException &caught) {
            // First by task index — deterministic at any thread
            // count even when task 7 fails first on the clock.
            EXPECT_EQ(caught.error().message(), "task3")
                << threads << " threads";
        }
        EXPECT_EQ(completed.load(), 10) << threads << " threads";
    }
}

TEST_F(FaultTest, CellFaultIsIsolatedToItsCell)
{
    // Build the fault-free reference before arming the injector.
    const MatrixResult &clean = cleanReference();
    FaultInjector::instance().arm(fault_points::cell, 1,
                                  ErrorCode::CellFailed, 1,
                                  targetLabel);
    const MatrixResult result = runMatrix(threadOptions(2));

    EXPECT_EQ(result.failedCells, 1u);
    ASSERT_EQ(result.cells.size(), clean.cells.size());

    const CellResult &failed = result.cells[targetIndex];
    ASSERT_FALSE(failed.ok());
    EXPECT_EQ(failed.error->code(), ErrorCode::CellFailed);
    EXPECT_NE(failed.error->message().find("injected fault at cell"),
              std::string::npos);
    EXPECT_EQ(failed.attempts, 1u);

    // Every other cell is untouched — bit-identical to a clean run.
    for (std::size_t i = 0; i < result.cells.size(); ++i) {
        if (i == targetIndex)
            continue;
        ASSERT_TRUE(result.cells[i].ok()) << "cell " << i;
        expectSameDeterministicFields(result.cells[i],
                                      clean.cells[i]);
    }
}

TEST_F(FaultTest, TransientFaultRetriesAndSucceeds)
{
    const MatrixResult &clean = cleanReference();
    FaultInjector::instance().arm(fault_points::cell, 1,
                                  ErrorCode::ResourceExhausted, 1,
                                  targetLabel);
    RunnerOptions options;
    options.threads = 2;
    options.retries = 1;
    const MatrixResult result = runMatrix(options);

    EXPECT_EQ(result.failedCells, 0u);
    ASSERT_TRUE(result.cells[targetIndex].ok());
    EXPECT_EQ(result.cells[targetIndex].attempts, 2u);

    // The retried cell's result is bit-identical to a clean run:
    // the retry re-simulates from the same immutable buffers.
    for (std::size_t i = 0; i < result.cells.size(); ++i)
        expectSameDeterministicFields(result.cells[i],
                                      clean.cells[i]);
}

TEST_F(FaultTest, ExhaustedRetriesReportTheTransientError)
{
    FaultInjector::instance().arm(fault_points::cell, 1,
                                  ErrorCode::ResourceExhausted, 3,
                                  targetLabel);
    RunnerOptions options;
    options.threads = 2;
    options.retries = 1;
    const MatrixResult result = runMatrix(options);

    EXPECT_EQ(result.failedCells, 1u);
    const CellResult &failed = result.cells[targetIndex];
    ASSERT_FALSE(failed.ok());
    EXPECT_EQ(failed.error->code(), ErrorCode::ResourceExhausted);
    EXPECT_EQ(failed.attempts, 2u); // initial try + 1 retry
}

TEST_F(FaultTest, NonTransientFailuresNeverRetry)
{
    FaultInjector::instance().arm(fault_points::cell, 1,
                                  ErrorCode::Internal, 1,
                                  targetLabel);
    RunnerOptions options;
    options.threads = 2;
    options.retries = 3;
    const MatrixResult result = runMatrix(options);

    EXPECT_EQ(result.failedCells, 1u);
    const CellResult &failed = result.cells[targetIndex];
    ASSERT_FALSE(failed.ok());
    EXPECT_EQ(failed.error->code(), ErrorCode::Internal);
    EXPECT_EQ(failed.attempts, 1u);
}

TEST_F(FaultTest, ProfilePhaseFailureFailsItsConsumersOnly)
{
    // One thread: the gshare profile phase (phase 0, consumed by
    // cells 1 and 2) executes first, so nth=1 targets it exactly.
    FaultInjector::instance().arm(fault_points::profilePhase, 1,
                                  ErrorCode::Internal, 1);
    const MatrixResult result = runMatrix(threadOptions(1));

    EXPECT_EQ(result.failedCells, 2u);
    for (const std::size_t i : {std::size_t{1}, std::size_t{2}}) {
        ASSERT_FALSE(result.cells[i].ok()) << "cell " << i;
        EXPECT_EQ(result.cells[i].error->code(),
                  ErrorCode::CellFailed);
        EXPECT_NE(result.cells[i].error->message().find(
                      "shared profiling phase failed"),
                  std::string::npos);
    }
    for (const std::size_t i :
         {std::size_t{0}, std::size_t{3}, std::size_t{4},
          std::size_t{5}})
        EXPECT_TRUE(result.cells[i].ok()) << "cell " << i;
}

TEST_F(FaultTest, MaterializeFailureAbortsTheRun)
{
    // Nothing can proceed without replay buffers: run() itself
    // throws instead of failing every cell individually.
    FaultInjector::instance().arm(fault_points::materialize, 1,
                                  ErrorCode::IoFailure, 1);
    ExperimentRunner runner(threadOptions(1));
    addTestCells(runner);
    EXPECT_THROW(runner.run(), ErrorException);
}

TEST_F(FaultTest, FailFastSkipsCellsNotYetStarted)
{
    // One thread executes cells in index order: cell 0 takes the
    // injected fault and every later cell is skipped unrun.
    FaultInjector::instance().arm(fault_points::cell, 1,
                                  ErrorCode::Internal, 1);
    RunnerOptions options;
    options.threads = 1;
    options.failFast = true;
    const MatrixResult result = runMatrix(options);

    EXPECT_EQ(result.failedCells, result.cells.size());
    ASSERT_FALSE(result.cells[0].ok());
    EXPECT_NE(
        result.cells[0].error->message().find("injected fault"),
        std::string::npos);
    for (std::size_t i = 1; i < result.cells.size(); ++i) {
        ASSERT_FALSE(result.cells[i].ok()) << "cell " << i;
        EXPECT_EQ(result.cells[i].error->message(),
                  "skipped: fail-fast after an earlier failure");
        EXPECT_EQ(result.cells[i].attempts, 0u);
    }
}

TEST_F(FaultTest, JournalBracketsBalanceWithFailures)
{
    FaultInjector::instance().arm(fault_points::cell, 1,
                                  ErrorCode::Internal, 1,
                                  targetLabel);
    obs::RunJournal journal("fault test");
    RunnerOptions options;
    options.threads = 2;
    options.journal = &journal;
    const MatrixResult result = runMatrix(options);
    EXPECT_EQ(result.failedCells, 1u);

    const obs::JournalSummary summary = journal.summary();
    EXPECT_EQ(summary.cellsBegun, result.cells.size());
    EXPECT_EQ(summary.cellsFailed, 1u);
    // The bracket invariant survives failures: every cell_begin is
    // closed by exactly one cell_end or cell_error.
    EXPECT_EQ(summary.cellsBegun,
              summary.cellsEnded + summary.cellsFailed);
    EXPECT_TRUE(summary.phasesBalanced);
    EXPECT_EQ(summary.cellsRestored, 0u);
}

TEST(CheckpointResumeTest, ResumeIsBitIdenticalAtAnyThreadCount)
{
    const std::string path = tempPath("resume_identity.jsonl");
    std::remove(path.c_str());

    RunnerOptions record;
    record.threads = 2;
    record.checkpointPath = path;
    const MatrixResult original = runMatrix(record);
    EXPECT_EQ(original.failedCells, 0u);
    EXPECT_EQ(original.restoredCells, 0u);

    for (const unsigned threads : {1u, 2u, 4u}) {
        obs::RunJournal journal("resume");
        RunnerOptions resume;
        resume.threads = threads;
        resume.checkpointPath = path;
        resume.resume = true;
        resume.journal = &journal;
        const MatrixResult resumed = runMatrix(resume);

        EXPECT_EQ(resumed.failedCells, 0u) << threads << " threads";
        EXPECT_EQ(resumed.restoredCells, resumed.cells.size());
        ASSERT_EQ(resumed.cells.size(), original.cells.size());
        for (std::size_t i = 0; i < resumed.cells.size(); ++i) {
            EXPECT_TRUE(resumed.cells[i].restored) << "cell " << i;
            EXPECT_EQ(resumed.cells[i].attempts, 0u);
            expectSameDeterministicFields(resumed.cells[i],
                                          original.cells[i]);
        }
        // Matrix accounting is deterministic too, including the
        // branch totals of profile phases that never re-ran.
        EXPECT_EQ(resumed.totalBranches, original.totalBranches);
        EXPECT_EQ(resumed.actualBranches, original.actualBranches);

        const obs::JournalSummary summary = journal.summary();
        EXPECT_EQ(summary.cellsRestored, resumed.cells.size());
        EXPECT_EQ(summary.cellsBegun,
                  summary.cellsEnded + summary.cellsFailed);
        EXPECT_TRUE(summary.phasesBalanced);
    }
    std::remove(path.c_str());
}

TEST_F(FaultTest, FailedCellIsNotCheckpointedAndRerunsOnResume)
{
    const std::string path = tempPath("resume_after_fault.jsonl");
    std::remove(path.c_str());

    const MatrixResult &clean = cleanReference();
    FaultInjector::instance().arm(fault_points::cell, 1,
                                  ErrorCode::Internal, 1,
                                  targetLabel);
    RunnerOptions record;
    record.threads = 2;
    record.checkpointPath = path;
    const MatrixResult broken = runMatrix(record);
    EXPECT_EQ(broken.failedCells, 1u);

    {
        SweepCheckpoint checkpoint(path);
        ASSERT_TRUE(checkpoint.load().ok());
        EXPECT_EQ(checkpoint.size(), broken.cells.size() - 1);
    }

    // Resume with the fault gone: only the failed cell re-executes,
    // and the merged result matches a clean run everywhere.
    FaultInjector::instance().disarm();
    RunnerOptions resume;
    resume.threads = 2;
    resume.checkpointPath = path;
    resume.resume = true;
    const MatrixResult repaired = runMatrix(resume);

    EXPECT_EQ(repaired.failedCells, 0u);
    EXPECT_EQ(repaired.restoredCells, repaired.cells.size() - 1);
    EXPECT_FALSE(repaired.cells[targetIndex].restored);
    EXPECT_EQ(repaired.cells[targetIndex].attempts, 1u);
    for (std::size_t i = 0; i < repaired.cells.size(); ++i)
        expectSameDeterministicFields(repaired.cells[i],
                                      clean.cells[i]);
    EXPECT_EQ(repaired.totalBranches, clean.totalBranches);
    EXPECT_EQ(repaired.actualBranches, clean.actualBranches);
    std::remove(path.c_str());
}

TEST_F(FaultTest, CheckpointWriteFaultWarnsButSweepCompletes)
{
    const std::string path = tempPath("checkpoint_write_fault.jsonl");
    std::remove(path.c_str());

    FaultInjector::instance().arm(fault_points::checkpointWrite, 1,
                                  ErrorCode::IoFailure, 1,
                                  targetLabel);
    RunnerOptions options;
    options.threads = 2;
    options.checkpointPath = path;
    const MatrixResult result = runMatrix(options);

    // Durability degraded, correctness intact: no cell failed, and
    // only the faulted cell is missing from the checkpoint.
    EXPECT_EQ(result.failedCells, 0u);
    for (const CellResult &cell : result.cells)
        EXPECT_TRUE(cell.ok());

    SweepCheckpoint checkpoint(path);
    ASSERT_TRUE(checkpoint.load().ok());
    EXPECT_EQ(checkpoint.size(), result.cells.size() - 1);
    std::remove(path.c_str());
}

} // namespace
} // namespace bpsim
