/**
 * @file
 * Differential and property suite for multi-context scenarios: a
 * scenario cell must be deterministic at any thread count, round-trip
 * its per-context attribution through checkpoints and shards, degrade
 * to the plain per-cell path bit-for-bit with a single member, and
 * keep its attribution arithmetic consistent with the shared SimStats
 * totals.
 *
 * Like test_fault.cc, tests that arm the process-wide FaultInjector
 * use a fixture whose TearDown disarms it.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/runner.hh"
#include "scenario/scenario.hh"
#include "support/fault.hh"
#include "support/random.hh"
#include "workload/specint.hh"

namespace bpsim
{
namespace
{

constexpr Count testProfileBranches = 60'000;
constexpr Count testEvalBranches = 120'000;
constexpr std::size_t testContexts = 2;

ExperimentConfig
scenarioConfig(PredictorKind kind, StaticScheme scheme,
               std::size_t contexts = testContexts)
{
    ExperimentConfig config;
    config.kind = kind;
    config.sizeBytes = 2048;
    config.scheme = scheme;
    config.profileBranches = testProfileBranches;
    config.evalBranches = testEvalBranches;
    config.scenarioContexts = contexts;
    return config;
}

std::vector<SyntheticProgram>
testMembers()
{
    std::vector<SyntheticProgram> members;
    members.push_back(makeSpecProgram(SpecProgram::Go, InputSet::Ref));
    members.push_back(
        makeSpecProgram(SpecProgram::Compress, InputSet::Ref));
    return members;
}

ScenarioSpec
specOf(ScenarioKind kind)
{
    ScenarioSpec spec;
    spec.kind = kind;
    // Several context switches inside the 180k-branch run.
    spec.quantum = 5'000;
    return spec;
}

/**
 * 3 scenario kinds x 2 predictor kinds x 3 schemes = 18 cells, all
 * sharing two member programs through three interleaves.
 */
void
addScenarioCells(ExperimentRunner &runner)
{
    for (const auto scenario :
         {ScenarioKind::Smt, ScenarioKind::ContextSwitch,
          ScenarioKind::Server}) {
        const std::size_t workload =
            runner.addWorkload(std::make_unique<ScenarioWorkload>(
                specOf(scenario), testMembers()));
        for (const auto kind :
             {PredictorKind::Gshare, PredictorKind::Bimodal}) {
            for (const auto scheme :
                 {StaticScheme::None, StaticScheme::Static95,
                  StaticScheme::StaticAcc}) {
                runner.addCell(workload,
                               scenarioConfig(kind, scheme));
            }
        }
    }
}

MatrixResult
runScenarioMatrix(const RunnerOptions &options)
{
    ExperimentRunner runner(options);
    addScenarioCells(runner);
    return runner.run();
}

RunnerOptions
matrixOptions(unsigned threads)
{
    RunnerOptions options;
    options.threads = threads;
    return options;
}

/** Single-thread reference run of the scenario matrix. */
const MatrixResult &
scenarioReference()
{
    static const MatrixResult reference =
        runScenarioMatrix(matrixOptions(1));
    return reference;
}

void
expectSameStats(const SimStats &a, const SimStats &b)
{
    EXPECT_EQ(a.branches, b.branches);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.mispredictions, b.mispredictions);
    EXPECT_EQ(a.staticPredicted, b.staticPredicted);
    EXPECT_EQ(a.staticMispredictions, b.staticMispredictions);
    EXPECT_EQ(a.collisions.lookups, b.collisions.lookups);
    EXPECT_EQ(a.collisions.collisions, b.collisions.collisions);
    EXPECT_EQ(a.collisions.constructive, b.collisions.constructive);
    EXPECT_EQ(a.collisions.destructive, b.collisions.destructive);
}

/** Stats plus the scenario attribution payload, field by field. */
void
expectSameScenarioCell(const CellResult &a, const CellResult &b)
{
    expectSameStats(a.result.stats, b.result.stats);
    EXPECT_EQ(a.result.hintCount, b.result.hintCount);
    EXPECT_EQ(a.result.simulatedBranches, b.result.simulatedBranches);

    ASSERT_EQ(a.result.contextStats.size(),
              b.result.contextStats.size());
    for (std::size_t c = 0; c < a.result.contextStats.size(); ++c) {
        const ContextStats &x = a.result.contextStats[c];
        const ContextStats &y = b.result.contextStats[c];
        EXPECT_EQ(x.branches, y.branches) << "context " << c;
        EXPECT_EQ(x.instructions, y.instructions) << "context " << c;
        EXPECT_EQ(x.mispredictions, y.mispredictions)
            << "context " << c;
        EXPECT_EQ(x.staticPredicted, y.staticPredicted)
            << "context " << c;
        EXPECT_EQ(x.collisions, y.collisions) << "context " << c;
    }

    ASSERT_EQ(a.result.aliasMatrix.size(),
              b.result.aliasMatrix.size());
    for (std::size_t i = 0; i < a.result.aliasMatrix.size(); ++i) {
        EXPECT_EQ(a.result.aliasMatrix[i].collisions,
                  b.result.aliasMatrix[i].collisions)
            << "matrix cell " << i;
        EXPECT_EQ(a.result.aliasMatrix[i].constructive,
                  b.result.aliasMatrix[i].constructive)
            << "matrix cell " << i;
        EXPECT_EQ(a.result.aliasMatrix[i].destructive,
                  b.result.aliasMatrix[i].destructive)
            << "matrix cell " << i;
    }
}

void
expectSameMatrix(const MatrixResult &run, const MatrixResult &ref)
{
    ASSERT_EQ(run.cells.size(), ref.cells.size());
    for (std::size_t i = 0; i < run.cells.size(); ++i) {
        ASSERT_TRUE(run.cells[i].ok()) << "cell " << i;
        expectSameScenarioCell(run.cells[i], ref.cells[i]);
    }
    EXPECT_EQ(run.failedCells, ref.failedCells);
    EXPECT_EQ(run.totalBranches, ref.totalBranches);
    EXPECT_EQ(run.actualBranches, ref.actualBranches);
}

std::string
tempPath(const std::string &name)
{
    return ::testing::TempDir() + name;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream content;
    content << in.rdbuf();
    return content.str();
}

void
writeFile(const std::string &path, const std::string &content)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << content;
}

/**
 * The degenerate scenario: a single member is context 0, whose PC
 * space is unshifted, so the interleaved stream is the member's
 * stream byte for byte and every statistic must match the plain
 * per-cell path exactly. Only the attribution payload (one context
 * covering everything, a 1x1 matrix) is extra.
 */
TEST(ScenarioTest, SingleContextBitIdenticalToPlainProgram)
{
    const auto schemes = {StaticScheme::None, StaticScheme::Static95,
                          StaticScheme::StaticAcc};

    RunnerOptions options = matrixOptions(1);
    ExperimentRunner plain(options);
    const std::size_t program =
        plain.addProgram(makeSpecProgram(SpecProgram::Go, InputSet::Ref));
    for (const auto scheme : schemes)
        plain.addCell(program, scenarioConfig(PredictorKind::Gshare,
                                              scheme, 0));
    const MatrixResult plain_result = plain.run();

    ExperimentRunner scenario(options);
    std::vector<SyntheticProgram> solo;
    solo.push_back(makeSpecProgram(SpecProgram::Go, InputSet::Ref));
    const std::size_t workload =
        scenario.addWorkload(std::make_unique<ScenarioWorkload>(
            specOf(ScenarioKind::Smt), std::move(solo)));
    for (const auto scheme : schemes)
        scenario.addCell(workload, scenarioConfig(
                                       PredictorKind::Gshare, scheme, 1));
    const MatrixResult scenario_result = scenario.run();

    ASSERT_EQ(plain_result.cells.size(), scenario_result.cells.size());
    for (std::size_t i = 0; i < plain_result.cells.size(); ++i) {
        ASSERT_TRUE(plain_result.cells[i].ok()) << "cell " << i;
        ASSERT_TRUE(scenario_result.cells[i].ok()) << "cell " << i;
        expectSameStats(plain_result.cells[i].result.stats,
                        scenario_result.cells[i].result.stats);
        EXPECT_EQ(plain_result.cells[i].result.hintCount,
                  scenario_result.cells[i].result.hintCount);
        EXPECT_EQ(plain_result.cells[i].result.simulatedBranches,
                  scenario_result.cells[i].result.simulatedBranches);

        // Plain cells carry no attribution; the scenario's single
        // context owns every measured branch.
        EXPECT_TRUE(plain_result.cells[i].result.contextStats.empty());
        const ExperimentResult &attr = scenario_result.cells[i].result;
        ASSERT_EQ(attr.contextStats.size(), 1u);
        EXPECT_EQ(attr.contextStats[0].branches, attr.stats.branches);
        EXPECT_EQ(attr.contextStats[0].mispredictions,
                  attr.stats.mispredictions);
        ASSERT_EQ(attr.aliasMatrix.size(), 1u);
    }
}

TEST(ScenarioTest, DeterministicAtAnyThreadCount)
{
    const MatrixResult &reference = scenarioReference();
    for (const unsigned threads : {1u, 2u, 4u}) {
        const MatrixResult run =
            runScenarioMatrix(matrixOptions(threads));
        expectSameMatrix(run, reference);
    }
}

/**
 * Attribution is a partition, not an estimate: summed over contexts,
 * every per-context counter reproduces the shared predictor's
 * SimStats total exactly, and the alias matrix never classifies more
 * collisions than it saw.
 */
TEST(ScenarioTest, PerContextSumsMatchSharedTotals)
{
    const MatrixResult &reference = scenarioReference();
    for (std::size_t i = 0; i < reference.cells.size(); ++i) {
        const ExperimentResult &result = reference.cells[i].result;
        ASSERT_EQ(result.contextStats.size(), testContexts)
            << "cell " << i;

        ContextStats sum;
        for (const ContextStats &ctx : result.contextStats) {
            sum.branches += ctx.branches;
            sum.instructions += ctx.instructions;
            sum.mispredictions += ctx.mispredictions;
            sum.staticPredicted += ctx.staticPredicted;
            sum.collisions += ctx.collisions;
        }
        EXPECT_EQ(sum.branches, result.stats.branches) << "cell " << i;
        EXPECT_EQ(sum.instructions, result.stats.instructions)
            << "cell " << i;
        EXPECT_EQ(sum.mispredictions, result.stats.mispredictions)
            << "cell " << i;
        EXPECT_EQ(sum.staticPredicted, result.stats.staticPredicted)
            << "cell " << i;
        EXPECT_EQ(sum.collisions, result.stats.collisions.collisions)
            << "cell " << i;

        ASSERT_EQ(result.aliasMatrix.size(), testContexts * testContexts)
            << "cell " << i;
        Count matrix_collisions = 0;
        for (const ContextAliasCell &cell : result.aliasMatrix) {
            EXPECT_LE(cell.constructive + cell.destructive,
                      cell.collisions)
                << "cell " << i;
            matrix_collisions += cell.collisions;
        }
        // The matrix only counts lookups whose entry carried a
        // previous occupant's tag; cold entries collide with nobody.
        EXPECT_LE(matrix_collisions, result.stats.collisions.collisions)
            << "cell " << i;
    }
}

/**
 * A context-switch quantum longer than the whole run never schedules
 * past context 0: context 1 owns nothing and the interference matrix
 * stays on the diagonal.
 */
TEST(ScenarioTest, OversizedQuantumNeverInterleaves)
{
    ScenarioSpec spec;
    spec.kind = ScenarioKind::ContextSwitch;
    spec.quantum = 10'000'000;

    RunnerOptions options = matrixOptions(1);
    ExperimentRunner runner(options);
    const std::size_t workload = runner.addWorkload(
        std::make_unique<ScenarioWorkload>(spec, testMembers()));
    runner.addCell(workload, scenarioConfig(PredictorKind::Gshare,
                                            StaticScheme::None));
    const MatrixResult result = runner.run();

    ASSERT_EQ(result.cells.size(), 1u);
    ASSERT_TRUE(result.cells[0].ok());
    const ExperimentResult &attr = result.cells[0].result;
    ASSERT_EQ(attr.contextStats.size(), testContexts);
    EXPECT_GT(attr.contextStats[0].branches, 0u);
    EXPECT_EQ(attr.contextStats[1].branches, 0u);
    EXPECT_EQ(attr.contextStats[1].instructions, 0u);
    EXPECT_EQ(attr.contextStats[1].mispredictions, 0u);
    EXPECT_EQ(attr.contextStats[1].collisions, 0u);

    ASSERT_EQ(attr.aliasMatrix.size(), testContexts * testContexts);
    for (std::size_t v = 0; v < testContexts; ++v) {
        for (std::size_t a = 0; a < testContexts; ++a) {
            if (v == a)
                continue;
            EXPECT_EQ(attr.aliasMatrix[v * testContexts + a].collisions,
                      0u)
                << "victim " << v << " aggressor " << a;
        }
    }
}

/**
 * Sharding composes with scenarios: each cell executes in exactly one
 * shard, and the union of the shards reproduces the full matrix —
 * including the per-context payloads — bit for bit.
 */
TEST(ScenarioTest, ShardUnionEqualsFullMatrix)
{
    const MatrixResult &reference = scenarioReference();
    constexpr unsigned shard_count = 2;

    std::vector<MatrixResult> shards;
    for (unsigned shard = 1; shard <= shard_count; ++shard) {
        RunnerOptions options = matrixOptions(2);
        options.shardIndex = shard;
        options.shardCount = shard_count;
        shards.push_back(runScenarioMatrix(options));
    }

    for (std::size_t i = 0; i < reference.cells.size(); ++i) {
        const CellResult *owner = nullptr;
        for (const MatrixResult &shard : shards) {
            ASSERT_EQ(shard.cells.size(), reference.cells.size());
            if (shard.cells[i].shardSkipped)
                continue;
            EXPECT_EQ(owner, nullptr)
                << "cell " << i << " executed by two shards";
            owner = &shard.cells[i];
        }
        ASSERT_NE(owner, nullptr) << "cell " << i << " executed nowhere";
        ASSERT_TRUE(owner->ok()) << "cell " << i;
        expectSameScenarioCell(*owner, reference.cells[i]);
    }
}

class ScenarioFaultTest : public ::testing::Test
{
  protected:
    void TearDown() override { FaultInjector::instance().disarm(); }
};

/** Cell index 1 of the scenario matrix: the smt workload's
 * gshare/static_95 cell. */
constexpr const char *targetLabel =
    "smt{go,compress}/gshare:2048/static_95";
constexpr std::size_t targetIndex = 1;

TEST_F(ScenarioFaultTest, FaultInOneScenarioCellLeavesOthersIntact)
{
    const MatrixResult &reference = scenarioReference();
    FaultInjector::instance().arm(fault_points::cell, 1,
                                  ErrorCode::CellFailed, 1,
                                  targetLabel);
    const MatrixResult result = runScenarioMatrix(matrixOptions(2));

    EXPECT_EQ(result.failedCells, 1u);
    const CellResult &failed = result.cells[targetIndex];
    ASSERT_FALSE(failed.ok());
    EXPECT_EQ(failed.error->code(), ErrorCode::CellFailed);

    for (std::size_t i = 0; i < result.cells.size(); ++i) {
        if (i == targetIndex)
            continue;
        ASSERT_TRUE(result.cells[i].ok()) << "cell " << i;
        expectSameScenarioCell(result.cells[i], reference.cells[i]);
    }
}

/**
 * Mid-scenario checkpoint/resume: an interrupted sweep checkpoints
 * every cell but the killed one; resuming restores them — contexts
 * and alias matrix included, proving the arrays round-trip the
 * checkpoint encoding — and re-runs only the gap, landing bit-equal
 * to the uninterrupted reference at any thread count.
 */
TEST_F(ScenarioFaultTest, ResumeFromMidScenarioCheckpointIsBitIdentical)
{
    const MatrixResult &reference = scenarioReference();
    const std::string path = tempPath("scenario_resume.jsonl");
    std::remove(path.c_str());

    FaultInjector::instance().arm(fault_points::cell, 1,
                                  ErrorCode::CellFailed, 1,
                                  targetLabel);
    RunnerOptions first = matrixOptions(2);
    first.checkpointPath = path;
    const MatrixResult interrupted = runScenarioMatrix(first);
    EXPECT_EQ(interrupted.failedCells, 1u);
    FaultInjector::instance().disarm();
    const std::string snapshot = readFile(path);

    for (const unsigned threads : {1u, 2u, 4u}) {
        // A successful resume appends the re-run cell; restore the
        // mid-sweep snapshot so every thread count starts equal.
        writeFile(path, snapshot);

        RunnerOptions resume = matrixOptions(threads);
        resume.checkpointPath = path;
        resume.resume = true;
        const MatrixResult resumed = runScenarioMatrix(resume);

        EXPECT_EQ(resumed.failedCells, 0u) << threads << " threads";
        EXPECT_EQ(resumed.restoredCells, resumed.cells.size() - 1)
            << threads << " threads";
        EXPECT_FALSE(resumed.cells[targetIndex].restored);
        expectSameMatrix(resumed, reference);
    }
}

TEST(ScenarioTest, NameAndSeedEncodeEveryStreamParameter)
{
    ScenarioSpec smt = specOf(ScenarioKind::Smt);
    const ScenarioWorkload a(smt, testMembers());
    EXPECT_EQ(a.name(), "smt{go,compress}");

    ScenarioSpec ctxsw = specOf(ScenarioKind::ContextSwitch);
    const ScenarioWorkload b(ctxsw, testMembers());
    EXPECT_EQ(b.name(), "ctxsw:q5000{go,compress}");

    // Stream-identical specs hash alike; any stream-affecting
    // parameter change separates the fingerprints.
    const ScenarioWorkload b2(ctxsw, testMembers());
    EXPECT_EQ(b.seedValue(), b2.seedValue());
    ctxsw.quantum = 6'000;
    const ScenarioWorkload c(ctxsw, testMembers());
    EXPECT_NE(b.seedValue(), c.seedValue());
    EXPECT_NE(a.seedValue(), b.seedValue());

    ScenarioSpec server = specOf(ScenarioKind::Server);
    server.zipfExponent = 1.5;
    server.requestLength = 256;
    server.seed = 789;
    const ScenarioWorkload d(server, testMembers());
    EXPECT_EQ(d.name(), "server:z1.5:r256:s789{go,compress}");
}

/** Same spec, same seed: the server interleave replays identically,
 * across both a fresh construction and a reset(). */
TEST(ScenarioTest, ServerArrivalsAreSeedDeterministic)
{
    ScenarioSpec spec = specOf(ScenarioKind::Server);
    ScenarioWorkload a(spec, testMembers());
    ScenarioWorkload b(spec, testMembers());

    constexpr Count probe = 20'000;
    std::vector<BranchRecord> first(probe);
    for (Count i = 0; i < probe; ++i) {
        ASSERT_TRUE(a.next(first[i]));
        BranchRecord other;
        ASSERT_TRUE(b.next(other));
        EXPECT_EQ(first[i].pc, other.pc) << "record " << i;
        EXPECT_EQ(first[i].taken, other.taken) << "record " << i;
    }

    a.reset();
    for (Count i = 0; i < probe; ++i) {
        BranchRecord replay;
        ASSERT_TRUE(a.next(replay));
        ASSERT_EQ(first[i].pc, replay.pc) << "record " << i;
        EXPECT_EQ(first[i].taken, replay.taken) << "record " << i;
    }
}

/**
 * The Zipf popularity sampler behind server scenarios: identically
 * seeded draws agree, and 100k-draw empirical frequencies track the
 * analytic mass() within a generous tolerance.
 */
TEST(ScenarioTest, ZipfSamplerIsDeterministicAndMatchesMass)
{
    constexpr std::size_t tenants = 4;
    const Rng::Zipf zipf(tenants, 1.2);

    Rng a(0xC0117);
    Rng b(0xC0117);
    std::vector<Count> histogram(tenants, 0);
    constexpr Count draws = 100'000;
    for (Count i = 0; i < draws; ++i) {
        const std::size_t x = zipf.sample(a);
        ASSERT_EQ(x, zipf.sample(b)) << "draw " << i;
        ASSERT_LT(x, tenants);
        ++histogram[x];
    }

    double mass_total = 0.0;
    for (std::size_t i = 0; i < tenants; ++i) {
        const double freq =
            static_cast<double>(histogram[i]) / draws;
        EXPECT_NEAR(freq, zipf.mass(i), 0.01) << "tenant " << i;
        mass_total += zipf.mass(i);
        // Popularity is strictly rank-ordered under s = 1.2.
        if (i > 0) {
            EXPECT_LT(histogram[i], histogram[i - 1]) << "tenant " << i;
        }
    }
    EXPECT_NEAR(mass_total, 1.0, 1e-9);
}

} // namespace
} // namespace bpsim
