/**
 * @file
 * Branch classification report, in the spirit of the branch
 * classification work (Chung et al.) the paper's Static_95 scheme
 * builds on: profile a program while simulating a dynamic predictor,
 * bucket the static branches by profiled behaviour, and attribute
 * executions, mispredictions, and predictor-table collisions to each
 * class. Shows at a glance *where* a predictor is losing and which
 * class a static scheme should target.
 *
 * Usage:
 *   branch_report [program] [predictor] [size_bytes]
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/engine.hh"
#include "core/experiment.hh"
#include "support/stats.hh"
#include "workload/specint.hh"

using namespace bpsim;

namespace
{

struct ClassRow
{
    const char *label;
    Count branches = 0;
    Count executed = 0;
    Count mispredicted = 0;
    Count collisions = 0;
};

/** Bucket index by profiled bias. */
std::size_t
classify(const BranchProfile &profile)
{
    const double bias = profile.bias();
    if (bias > 0.99)
        return 0; // near-deterministic
    if (bias > 0.95)
        return 1; // highly biased (Static_95 pool)
    if (bias > 0.80)
        return 2; // moderately biased
    if (bias > 0.60)
        return 3; // weakly biased
    return 4;     // unbiased (correlation or noise)
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string program_name = argc > 1 ? argv[1] : "gcc";
    const std::string predictor_name = argc > 2 ? argv[2] : "gshare";
    const std::size_t size_bytes =
        argc > 3 ? std::strtoul(argv[3], nullptr, 10) : 8192;
    const Count branches = 2'000'000;

    SyntheticProgram program = makeSpecProgram(
        specProgramFromName(program_name), InputSet::Ref);

    auto predictor = makePredictor(
        predictorKindFromName(predictor_name), size_bytes);
    ProfileDb profile;
    SimOptions options;
    options.maxBranches = branches;
    options.profile = &profile;
    const SimStats stats = simulate(*predictor, program, options);

    std::vector<ClassRow> rows = {
        {"bias > 99%"}, {"bias 95-99%"},      {"bias 80-95%"},
        {"bias 60-80%"}, {"unbiased (<60%)"},
    };
    for (const auto &[pc, record] : profile.entries()) {
        ClassRow &row = rows[classify(record)];
        ++row.branches;
        row.executed += record.executed;
        row.mispredicted += record.predicted - record.correct;
        row.collisions += record.collisions;
    }

    std::printf("branch classes: %s under %s (%zu B), %llu branches\n"
                "\n",
                program_name.c_str(), predictor_name.c_str(),
                size_bytes,
                static_cast<unsigned long long>(branches));
    std::printf("%-18s %8s %8s %8s %10s %10s\n", "class", "static",
                "%dyn", "%misp", "misp-rate", "coll/pred");

    for (const auto &row : rows) {
        const double misp_rate =
            row.executed == 0
                ? 0.0
                : 100.0 * static_cast<double>(row.mispredicted) /
                      static_cast<double>(row.executed);
        const double coll_rate =
            row.executed == 0
                ? 0.0
                : static_cast<double>(row.collisions) /
                      static_cast<double>(row.executed);
        std::printf("%-18s %8llu %7.1f%% %7.1f%% %9.2f%% %10.3f\n",
                    row.label,
                    static_cast<unsigned long long>(row.branches),
                    percent(row.executed, stats.branches),
                    percent(row.mispredicted, stats.mispredictions),
                    misp_rate, coll_rate);
    }

    std::printf("\noverall: MISP/KI %.2f, accuracy %.2f%%\n",
                stats.mispKi(), stats.accuracyPercent());
    std::printf("\nreading: the top class is what Static_95 removes "
                "(cheap insurance); the bottom class is where "
                "correlation-capable predictors earn their keep.\n");
    return 0;
}
