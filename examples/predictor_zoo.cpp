/**
 * @file
 * Compare every dynamic prediction scheme across a range of hardware
 * budgets on one workload — the "which predictor should I use at this
 * size" question the library answers out of the box.
 *
 * Usage:
 *   predictor_zoo [program]        (default: gcc)
 */

#include <cstdio>
#include <string>
#include <vector>

#include "core/engine.hh"
#include "core/experiment.hh"
#include "predictor/factory.hh"
#include "workload/specint.hh"

using namespace bpsim;

int
main(int argc, char **argv)
{
    const std::string program_name = argc > 1 ? argv[1] : "gcc";
    const SpecProgram id = specProgramFromName(program_name);
    const Count branches = 2'000'000;
    const std::vector<std::size_t> sizes_kb = {1, 2, 4, 8, 16, 32, 64};

    SyntheticProgram program = makeSpecProgram(id, InputSet::Ref);
    std::printf("MISP/KI for %s (%zu static branches), %llu branches "
                "per run\n\n",
                program.name().c_str(), program.staticBranchCount(),
                static_cast<unsigned long long>(branches));

    std::printf("%6s", "size");
    for (const auto kind : allPredictorKinds())
        std::printf(" %10s", predictorKindName(kind).c_str());
    std::printf("\n");

    for (const std::size_t kb : sizes_kb) {
        std::printf("%4zuKB", kb);
        double best = 1e9;
        std::string best_name;
        for (const auto kind : allPredictorKinds()) {
            const SimStats stats =
                runBaseline(program, kind, kb * 1024, branches);
            std::printf(" %10.2f", stats.mispKi());
            if (stats.mispKi() < best) {
                best = stats.mispKi();
                best_name = predictorKindName(kind);
            }
        }
        std::printf("   <- best: %s\n", best_name.c_str());
    }

    // Extension predictors (not part of the paper's five schemes).
    std::printf("\nextensions (8 KB):");
    for (const char *spec : {"agree:8192", "tournament:8192"}) {
        auto predictor = makePredictor(spec);
        SimOptions options;
        options.maxBranches = branches;
        const SimStats stats = simulate(*predictor, program, options);
        std::printf("  %s=%.2f", predictor->name().c_str(),
                    stats.mispKi());
    }
    std::printf("\n\nExpected shape: 2bcgskew wins at most sizes; "
                "bimodal stops scaling early; ghist/gshare keep "
                "improving with capacity.\n");
    return 0;
}
