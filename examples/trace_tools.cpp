/**
 * @file
 * Command-line trace utility: generate binary branch traces from the
 * synthetic workloads, inspect them, and convert to text — the same
 * artifacts the library's TraceReader consumes, so downstream tools
 * (or other simulators) can replay identical branch streams.
 *
 * Usage:
 *   trace_tools generate <program> <train|ref> <branches> <file>
 *   trace_tools info <file>
 *   trace_tools dump <file> [limit]
 *   trace_tools totext <file> <textfile>
 */

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "profile/profile_db.hh"
#include "support/stats.hh"
#include "trace/trace_io.hh"
#include "workload/specint.hh"

using namespace bpsim;

namespace
{

int
usage()
{
    std::fprintf(
        stderr,
        "usage:\n"
        "  trace_tools generate <program> <train|ref> <branches> "
        "<file>\n"
        "  trace_tools info <file>\n"
        "  trace_tools dump <file> [limit]\n"
        "  trace_tools totext <file> <textfile>\n");
    return 2;
}

int
cmdGenerate(int argc, char **argv)
{
    if (argc != 6)
        return usage();
    const SpecProgram id = specProgramFromName(argv[2]);
    const InputSet input = std::strcmp(argv[3], "train") == 0
                               ? InputSet::Train
                               : InputSet::Ref;
    const Count branches = std::strtoull(argv[4], nullptr, 10);

    SyntheticProgram program = makeSpecProgram(id, input);
    BoundedStream bounded(program, branches);
    TraceWriter writer(argv[5]);
    const Count written = writer.writeAll(bounded);
    std::printf("wrote %" PRIu64 " records to %s\n", written, argv[5]);
    return 0;
}

int
cmdInfo(int argc, char **argv)
{
    if (argc != 3)
        return usage();
    TraceReader reader(argv[2]);
    ProfileDb profile;
    BranchRecord record;
    Count branches = 0;
    Count instructions = 0;
    Count taken = 0;
    while (reader.next(record)) {
        ++branches;
        instructions += record.instGap;
        taken += record.taken;
        profile.recordOutcome(record.pc, record.taken);
    }
    std::printf("records:         %" PRIu64 "\n", branches);
    std::printf("instructions:    %" PRIu64 "\n", instructions);
    std::printf("static branches: %zu\n", profile.size());
    std::printf("CBRs/KI:         %.1f\n",
                perKilo(branches, instructions));
    std::printf("taken rate:      %.1f%%\n", percent(taken, branches));
    std::printf("bias>95%% share:  %.1f%%\n",
                percent(profile.executedAboveBias(0.95),
                        profile.totalExecuted()));
    return 0;
}

int
cmdDump(int argc, char **argv)
{
    if (argc != 3 && argc != 4)
        return usage();
    const Count limit =
        argc == 4 ? std::strtoull(argv[3], nullptr, 10) : 20;
    TraceReader reader(argv[2]);
    BranchRecord record;
    for (Count i = 0; i < limit && reader.next(record); ++i) {
        std::printf("%#10" PRIx64 " %c gap=%" PRIu32 "\n", record.pc,
                    record.taken ? 'T' : 'N', record.instGap);
    }
    return 0;
}

int
cmdToText(int argc, char **argv)
{
    if (argc != 4)
        return usage();
    TraceReader reader(argv[2]);
    writeTextTrace(reader, argv[3]);
    std::printf("wrote %s\n", argv[3]);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    const std::string command = argv[1];
    if (command == "generate")
        return cmdGenerate(argc, argv);
    if (command == "info")
        return cmdInfo(argc, argv);
    if (command == "dump")
        return cmdDump(argc, argv);
    if (command == "totext")
        return cmdToText(argc, argv);
    return usage();
}
