/**
 * @file
 * Quickstart: build a synthetic workload, run a dynamic predictor
 * over it, then add profile-guided static hints and compare.
 *
 * This is the minimal end-to-end use of the library:
 *
 *   1. make a workload            (makeSpecProgram)
 *   2. run a baseline predictor   (runBaseline)
 *   3. run the two-phase combined static/dynamic experiment
 *      (runExperiment with a StaticScheme)
 */

#include <cstdio>

#include "core/experiment.hh"
#include "workload/specint.hh"

using namespace bpsim;

int
main()
{
    // A synthetic stand-in for SPECINT95 gcc, reference input.
    SyntheticProgram program =
        makeSpecProgram(SpecProgram::Gcc, InputSet::Ref);

    std::printf("program: %s (%zu static branches)\n",
                program.name().c_str(), program.staticBranchCount());

    // Baseline: a 4 KB gshare, no static prediction.
    const Count branches = 2'000'000;
    SimStats base = runBaseline(program, PredictorKind::Gshare, 4096,
                                branches);
    std::printf("gshare 4KB baseline:     MISP/KI %6.2f  "
                "accuracy %5.2f%%  collisions %llu\n",
                base.mispKi(), base.accuracyPercent(),
                static_cast<unsigned long long>(
                    base.collisions.collisions));

    // Combined: profile the program, statically predict every branch
    // whose bias exceeds 95%, re-run.
    ExperimentConfig config;
    config.kind = PredictorKind::Gshare;
    config.sizeBytes = 4096;
    config.scheme = StaticScheme::Static95;
    config.profileBranches = branches / 2;
    config.evalBranches = branches;

    ExperimentResult result = runExperiment(program, config);
    std::printf("gshare 4KB + static_95:  MISP/KI %6.2f  "
                "accuracy %5.2f%%  collisions %llu\n",
                result.stats.mispKi(),
                result.stats.accuracyPercent(),
                static_cast<unsigned long long>(
                    result.stats.collisions.collisions));
    std::printf("static hints: %zu branches, handled %5.2f%% of "
                "dynamic stream\n",
                result.hintCount, result.stats.staticShare());
    std::printf("MISP/KI improvement: %.1f%%\n",
                mispKiImprovement(base, result.stats));
    return 0;
}
