/**
 * @file
 * The deployment workflow the paper envisions for Spike: profile a
 * program, persist the profile database, select static hints offline,
 * persist the hint database, then evaluate a combined predictor that
 * reads the hints back — each phase through on-disk artifacts.
 *
 * Usage:
 *   profile_guided [program] [predictor] [size_bytes] [scheme]
 *
 * Defaults: gcc gshare 8192 static_acc. Artifacts are written to the
 * current directory as <program>.profile and <program>.hints.
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/cpi_model.hh"
#include "core/engine.hh"
#include "core/experiment.hh"
#include "workload/specint.hh"

using namespace bpsim;

int
main(int argc, char **argv)
{
    const std::string program_name = argc > 1 ? argv[1] : "gcc";
    const std::string predictor_name = argc > 2 ? argv[2] : "gshare";
    const std::size_t size_bytes =
        argc > 3 ? std::strtoul(argv[3], nullptr, 10) : 8192;
    const std::string scheme_name =
        argc > 4 ? argv[4] : "static_acc";

    const SpecProgram program_id = specProgramFromName(program_name);
    const PredictorKind kind = predictorKindFromName(predictor_name);
    const StaticScheme scheme = staticSchemeFromName(scheme_name);
    const Count phase_branches = 2'000'000;

    SyntheticProgram program =
        makeSpecProgram(program_id, InputSet::Train);

    // --- Phase 1: instrumented profiling run (train input). -------
    std::printf("[1/3] profiling %s (train input, %s %zuB "
                "simulated alongside)...\n",
                program_name.c_str(), predictor_name.c_str(),
                size_bytes);
    ProfileDb profile;
    {
        auto profiling_predictor = makePredictor(kind, size_bytes);
        SimOptions options;
        options.maxBranches = phase_branches;
        options.profile = &profile;
        simulate(*profiling_predictor, program, options);
    }
    const std::string profile_path = program_name + ".profile";
    profile.save(profile_path);
    std::printf("      %zu static branches profiled -> %s\n",
                profile.size(), profile_path.c_str());

    // --- Phase 2: offline hint selection. --------------------------
    std::printf("[2/3] selecting static hints (%s)...\n",
                scheme_name.c_str());
    HintDb hints = selectStatic(scheme, profile);
    const std::string hints_path = program_name + ".hints";
    hints.save(hints_path);
    std::printf("      %zu branches marked for static prediction -> "
                "%s\n",
                hints.size(), hints_path.c_str());

    // --- Phase 3: production run (ref input) with hints. -----------
    std::printf("[3/3] evaluating on the ref input...\n");
    program.setInput(InputSet::Ref);

    SimOptions eval;
    eval.maxBranches = phase_branches;

    auto baseline_predictor = makePredictor(kind, size_bytes);
    const SimStats base = simulate(*baseline_predictor, program, eval);

    CombinedPredictor combined(makePredictor(kind, size_bytes),
                               HintDb::load(hints_path));
    const SimStats with = simulate(combined, program, eval);

    std::printf("\n%-28s %10s %10s\n", "", "baseline", "combined");
    std::printf("%-28s %10.2f %10.2f\n", "MISP/KI", base.mispKi(),
                with.mispKi());
    std::printf("%-28s %9.2f%% %9.2f%%\n", "accuracy",
                base.accuracyPercent(), with.accuracyPercent());
    std::printf("%-28s %10llu %10llu\n", "collisions",
                static_cast<unsigned long long>(
                    base.collisions.collisions),
                static_cast<unsigned long long>(
                    with.collisions.collisions));
    std::printf("%-28s %10s %9.2f%%\n", "statically predicted", "-",
                with.staticShare());
    std::printf("%-28s %10.3f %10.3f\n", "est. CPI (21264 model)",
                estimateCpi(base), estimateCpi(with));
    std::printf("\nMISP/KI improvement: %+.1f%%, est. speedup %.3fx "
                "(cross-trained: profile=train, eval=ref)\n",
                mispKiImprovement(base, with),
                estimateSpeedup(base, with));
    return 0;
}
