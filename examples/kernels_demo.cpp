/**
 * @file
 * Predictor behaviour on the micro-kernels: each kernel has a known
 * analytic difficulty, so the table doubles as a correctness sanity
 * check and as a teaching aid for which predictor captures which
 * control-flow idiom.
 *
 * Usage:
 *   kernels_demo [size_bytes]     (default 4096)
 */

#include <cstdio>
#include <cstdlib>

#include "core/engine.hh"
#include "predictor/factory.hh"
#include "workload/kernels.hh"

using namespace bpsim;

int
main(int argc, char **argv)
{
    const std::size_t size_bytes =
        argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 4096;
    const Count branches = 400000;

    std::printf("accuracy on micro-kernels (%zu-byte predictors, "
                "%llu branches)\n\n",
                size_bytes, static_cast<unsigned long long>(branches));
    std::printf("%-22s", "kernel");
    for (const auto kind : allPredictorKinds())
        std::printf(" %9s", predictorKindName(kind).c_str());
    std::printf("\n");

    for (const auto kernel : allKernels()) {
        std::printf("%-22s", kernelName(kernel).c_str());
        for (const auto kind : allPredictorKinds()) {
            SyntheticProgram program = makeKernel(kernel);
            auto predictor = makePredictor(kind, size_bytes);
            SimOptions options;
            options.maxBranches = branches;
            options.warmupBranches = 50000;
            const SimStats stats =
                simulate(*predictor, program, options);
            std::printf(" %8.1f%%", stats.accuracyPercent());
        }
        std::printf("\n");
    }

    std::printf("\nexpected: matrix_sweep and state_machine near 100%% "
                "for history predictors; quicksort_partition capped "
                "near the loop/comparison mix; list_traversal capped "
                "at 1 - 1/trip on the control.\n");
    return 0;
}
