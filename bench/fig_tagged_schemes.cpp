/**
 * @file
 * Static-scheme matrix over the full registered predictor family:
 * the paper's five kinds plus the tagged-geometric extensions (tage,
 * hashed perceptron) under none / Static_95 / Static_Acc /
 * Static_Fac, one block per program, 8 KB predictors.
 *
 * The question this bench answers for EXPERIMENTS.md: do
 * profile-directed static hints still pay off against predictors
 * whose own tagging/thresholding machinery already suppresses
 * destructive aliasing? The aggregate section reports the
 * constructive / destructive / neutral collision split per
 * predictor x scheme so the answer can be read off directly.
 *
 * Cells flow through the registry (ExperimentConfig::predictor), so
 * a newly registered predictor joins this matrix without edits here
 * beyond the name list.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hh"

using namespace bpsim;
using namespace bpsim::bench;

namespace
{

const std::vector<std::string> predictors = {
    "bimodal", "ghist", "gshare", "bimode",
    "2bcgskew", "tage",  "perceptron"};

const StaticScheme schemes[] = {
    StaticScheme::None, StaticScheme::Static95,
    StaticScheme::StaticAcc, StaticScheme::StaticFac};

constexpr std::size_t schemeCount =
    sizeof(schemes) / sizeof(schemes[0]);

/** Branch-weighted aggregate over programs for one cell column. */
struct Aggregate
{
    Count mispredictions = 0;
    Count instructions = 0;
    Count collisions = 0;
    Count constructive = 0;
    Count destructive = 0;

    void
    add(const SimStats &stats)
    {
        mispredictions += stats.mispredictions;
        instructions += stats.instructions;
        collisions += stats.collisions.collisions;
        constructive += stats.collisions.constructive;
        destructive += stats.collisions.destructive;
    }

    double
    mispKi() const
    {
        return instructions == 0 ? 0.0
                                 : 1000.0 *
                                       static_cast<double>(
                                           mispredictions) /
                                       static_cast<double>(
                                           instructions);
    }

    Count
    neutral() const
    {
        return collisions - constructive - destructive;
    }
};

} // namespace

int
main(int argc, char **argv)
{
    const BenchOptions options = parseBenchOptions(
        argc, argv, "fig_tagged_schemes", "BENCH_runner.json",
        seedBaselineSeconds);
    const std::size_t size_bytes = 8192;

    const auto journal = makeJournal(options, "fig_tagged_schemes");
    ExperimentRunner runner(runnerOptions(options, journal.get()));
    for (const auto id : allSpecPrograms()) {
        const std::size_t program =
            runner.addProgram(makeSpecProgram(id, InputSet::Ref));
        for (const std::string &predictor : predictors) {
            for (const auto scheme : schemes) {
                ExperimentConfig config = baseConfig(
                    PredictorKind::Gshare, size_bytes, scheme);
                config.predictor = predictor;
                config.evalWarmupBranches = options.warmupBranches;
                runner.addCell(program, config);
            }
        }
    }
    const MatrixResult result = runner.run();

    std::printf("Tagged family x static schemes: MISP/KI "
                "(8 KB predictors)\n");

    // predictor x scheme aggregates, branch-weighted over programs.
    std::vector<std::vector<Aggregate>> aggregate(
        predictors.size(), std::vector<Aggregate>(schemeCount));

    std::size_t cell = 0;
    for (std::size_t p = 0; p < runner.programCount(); ++p) {
        std::printf("\n[%s]\n", runner.program(p).name().c_str());
        std::printf("%-10s %10s %12s %12s %12s %10s %10s %10s\n",
                    "predictor", "none", "static_95", "static_acc",
                    "static_fac", "impr95", "imprAcc", "imprFac");
        for (std::size_t k = 0; k < predictors.size(); ++k) {
            const CellResult *row[schemeCount];
            for (std::size_t s = 0; s < schemeCount; ++s) {
                row[s] = &result.cells[cell++];
                if (!row[s]->shardSkipped && row[s]->ok())
                    aggregate[k][s].add(row[s]->result.stats);
            }
            const auto misp = [](const CellResult &c) {
                if (c.shardSkipped)
                    return std::string("-");
                char buf[32];
                std::snprintf(buf, sizeof(buf), "%.2f",
                              c.result.stats.mispKi());
                return std::string(buf);
            };
            const auto impr = [](const CellResult &base,
                                 const CellResult &with) {
                if (base.shardSkipped || with.shardSkipped)
                    return std::string("-");
                return formatImprovement(
                    base.result.stats.mispKi(),
                    with.result.stats.mispKi());
            };
            std::printf(
                "%-10s %10s %12s %12s %12s %10s %10s %10s\n",
                predictors[k].c_str(), misp(*row[0]).c_str(),
                misp(*row[1]).c_str(), misp(*row[2]).c_str(),
                misp(*row[3]).c_str(), impr(*row[0], *row[1]).c_str(),
                impr(*row[0], *row[2]).c_str(),
                impr(*row[0], *row[3]).c_str());
        }
    }

    std::printf("\nAggregate collision split over all programs "
                "(constructive / destructive / neutral, %% of "
                "collisions)\n");
    std::printf("%-10s %-10s %10s %9s %9s %9s\n", "predictor",
                "scheme", "misp/KI", "constr", "destr", "neutral");
    for (std::size_t k = 0; k < predictors.size(); ++k) {
        for (std::size_t s = 0; s < schemeCount; ++s) {
            const Aggregate &agg = aggregate[k][s];
            const double denom = agg.collisions == 0
                                     ? 1.0
                                     : static_cast<double>(
                                           agg.collisions);
            std::printf(
                "%-10s %-10s %10.2f %8.1f%% %8.1f%% %8.1f%%\n",
                predictors[k].c_str(),
                staticSchemeName(schemes[s]).c_str(), agg.mispKi(),
                100.0 * static_cast<double>(agg.constructive) /
                    denom,
                100.0 * static_cast<double>(agg.destructive) /
                    denom,
                100.0 * static_cast<double>(agg.neutral()) / denom);
        }
    }

    std::printf("\n%zu cells, %u threads: %.2fs wall "
                "(materialize %.2fs), %.1fM branches/s, "
                "%.2fx vs one-thread estimate\n",
                result.cells.size(), result.threads,
                result.wallSeconds, result.materializeSeconds,
                static_cast<double>(result.totalBranches) / 1e6 /
                    result.wallSeconds,
                result.speedupVsSerialEstimate());
    std::printf("profile cache: %llu hits / %llu misses; kernels in "
                "%llu/%zu cells\n",
                static_cast<unsigned long long>(
                    result.profileCacheHits),
                static_cast<unsigned long long>(
                    result.profileCacheMisses),
                static_cast<unsigned long long>(result.kernelCells),
                result.cells.size());

    if (!options.jsonPath.empty()) {
        writeRunnerJson(options.jsonPath, "fig_tagged_schemes",
                        runner, result, options.baselineSeconds);
    }
    writeJournal(options, journal.get());
    return 0;
}
