/**
 * @file
 * Reproduces Figures 7-12 of the paper: MISP/KI for the five dynamic
 * predictors under the three static schemes (none / Static_95 /
 * Static_Acc), one block per program. Predictor size 8 KB.
 *
 * Runs as a parallel experiment matrix: each program's branch stream
 * is materialized once into a replay buffer and the 90 cells are
 * sharded across worker threads (--threads / $BPSIM_THREADS).
 * Per-cell timing lands in BENCH_runner.json.
 *
 * Paper shapes to verify:
 *  - bimodal gains ~nothing from Static_95 (it already captures
 *    biased branches and has little aliasing);
 *  - ghist consistently improves with Static_95 (bias removal
 *    complements correlation);
 *  - for m88ksim Static_95 beats Static_Acc; for go/gcc the reverse;
 *  - ijpeg shows little improvement under either scheme;
 *  - 2bcgskew has the best MISP/KI and the smallest improvements.
 */

#include <cstdio>

#include "bench_util.hh"

using namespace bpsim;
using namespace bpsim::bench;

int
main(int argc, char **argv)
{
    const BenchOptions options = parseBenchOptions(
        argc, argv, "fig7_12_static_schemes", "BENCH_runner.json",
        seedBaselineSeconds);
    const std::size_t size_bytes = 8192;
    const StaticScheme schemes[] = {StaticScheme::None,
                                    StaticScheme::Static95,
                                    StaticScheme::StaticAcc};

    const auto journal =
        makeJournal(options, "fig7_12_static_schemes");
    ExperimentRunner runner(runnerOptions(options, journal.get()));
    for (const auto id : allSpecPrograms()) {
        const std::size_t program =
            runner.addProgram(makeSpecProgram(id, InputSet::Ref));
        for (const auto kind : allPredictorKinds()) {
            for (const auto scheme : schemes) {
                ExperimentConfig config =
                    baseConfig(kind, size_bytes, scheme);
                config.evalWarmupBranches = options.warmupBranches;
                runner.addCell(program, config);
            }
        }
    }
    const MatrixResult result = runner.run();

    std::printf("Figures 7-12: MISP/KI per predictor and static "
                "scheme (8 KB predictors)\n");

    std::size_t cell = 0;
    for (std::size_t p = 0; p < runner.programCount(); ++p) {
        std::printf("\n[%s]\n", runner.program(p).name().c_str());
        std::printf("%-10s %10s %12s %12s %10s %10s\n", "predictor",
                    "none", "static_95", "static_acc", "impr95",
                    "imprAcc");
        for (const auto kind : allPredictorKinds()) {
            // A sharded run (--shard i/N) owns only some cells; the
            // others carry no results, so print "-" for them and
            // compute improvements only when both operands ran here.
            const CellResult &c_none = result.cells[cell++];
            const CellResult &c_s95 = result.cells[cell++];
            const CellResult &c_acc = result.cells[cell++];
            const auto misp = [](const CellResult &c) {
                if (c.shardSkipped)
                    return std::string("-");
                char buf[32];
                std::snprintf(buf, sizeof(buf), "%.2f",
                              c.result.stats.mispKi());
                return std::string(buf);
            };
            const auto impr = [](const CellResult &base,
                                 const CellResult &with) {
                if (base.shardSkipped || with.shardSkipped)
                    return std::string("-");
                return formatImprovement(
                    base.result.stats.mispKi(),
                    with.result.stats.mispKi());
            };
            std::printf("%-10s %10s %12s %12s %10s %10s\n",
                        predictorKindName(kind).c_str(),
                        misp(c_none).c_str(), misp(c_s95).c_str(),
                        misp(c_acc).c_str(),
                        impr(c_none, c_s95).c_str(),
                        impr(c_none, c_acc).c_str());
        }
    }

    std::printf("\n%zu cells, %u threads: %.2fs wall "
                "(materialize %.2fs), %.1fM branches/s, "
                "%.2fx vs one-thread estimate\n",
                result.cells.size(), result.threads,
                result.wallSeconds, result.materializeSeconds,
                static_cast<double>(result.totalBranches) / 1e6 /
                    result.wallSeconds,
                result.speedupVsSerialEstimate());
    std::printf("profile cache: %llu hits / %llu misses "
                "(%.1fM branches skipped); kernels in %llu/%zu "
                "cells, %.1fM simulated branches/s\n",
                static_cast<unsigned long long>(
                    result.profileCacheHits),
                static_cast<unsigned long long>(
                    result.profileCacheMisses),
                static_cast<double>(result.totalBranches -
                                    result.actualBranches) / 1e6,
                static_cast<unsigned long long>(result.kernelCells),
                result.cells.size(),
                result.kernelBranchesPerSecond() / 1e6);

    if (!options.jsonPath.empty()) {
        writeRunnerJson(options.jsonPath, "fig7_12_static_schemes",
                        runner, result, options.baselineSeconds);
    }
    writeJournal(options, journal.get());
    return 0;
}
