/**
 * @file
 * Reproduces Figures 7-12 of the paper: MISP/KI for the five dynamic
 * predictors under the three static schemes (none / Static_95 /
 * Static_Acc), one block per program. Predictor size 8 KB.
 *
 * Paper shapes to verify:
 *  - bimodal gains ~nothing from Static_95 (it already captures
 *    biased branches and has little aliasing);
 *  - ghist consistently improves with Static_95 (bias removal
 *    complements correlation);
 *  - for m88ksim Static_95 beats Static_Acc; for go/gcc the reverse;
 *  - ijpeg shows little improvement under either scheme;
 *  - 2bcgskew has the best MISP/KI and the smallest improvements.
 */

#include <cstdio>

#include "bench_util.hh"

using namespace bpsim;
using namespace bpsim::bench;

int
main()
{
    const std::size_t size_bytes = 8192;

    std::printf("Figures 7-12: MISP/KI per predictor and static "
                "scheme (8 KB predictors)\n");

    for (const auto id : allSpecPrograms()) {
        SyntheticProgram program = makeSpecProgram(id, InputSet::Ref);
        std::printf("\n[%s]\n", program.name().c_str());
        std::printf("%-10s %10s %12s %12s %10s %10s\n", "predictor",
                    "none", "static_95", "static_acc", "impr95",
                    "imprAcc");

        for (const auto kind : allPredictorKinds()) {
            ExperimentConfig config =
                baseConfig(kind, size_bytes, StaticScheme::None);
            const double none =
                runExperiment(program, config).stats.mispKi();

            config.scheme = StaticScheme::Static95;
            const double s95 =
                runExperiment(program, config).stats.mispKi();

            config.scheme = StaticScheme::StaticAcc;
            const double acc =
                runExperiment(program, config).stats.mispKi();

            std::printf("%-10s %10.2f %12.2f %12.2f %10s %10s\n",
                        predictorKindName(kind).c_str(), none, s95,
                        acc, formatImprovement(none, s95).c_str(),
                        formatImprovement(none, acc).c_str());
        }
    }
    return 0;
}
