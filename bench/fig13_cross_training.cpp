/**
 * @file
 * Reproduces Figure 13 of the paper: the effect of cross-training on
 * profile-based static prediction. For a 16 KB gshare with Static_95,
 * four bars per program:
 *
 *   1. no static prediction,
 *   2. self-trained static prediction (profile on ref, run on ref),
 *   3. naive cross-training (profile on train, run on ref),
 *   4. cross-training with the merge filter (drop branches whose
 *      bias changes >5% between the profiles).
 *
 * Paper shapes to verify: naive cross-training badly degrades perl
 * and m88ksim (hot branches reverse direction between inputs); the
 * filtered merge recovers them to near self-trained quality.
 */

#include <cstdio>

#include "bench_util.hh"

using namespace bpsim;
using namespace bpsim::bench;

int
main(int argc, char **argv)
{
    const BenchOptions options =
        parseBenchOptions(argc, argv, "fig13_cross_training");
    BenchJournal journal(options, "fig13_cross_training");
    const std::size_t size_bytes = 16384;

    std::printf("Figure 13: cross-training, gshare 16 KB + Static_95 "
                "(MISP/KI)\n\n");
    std::printf("%-10s %10s %10s %12s %14s\n", "program", "none",
                "self", "naive-cross", "filtered-cross");

    for (const auto id : allSpecPrograms()) {
        SyntheticProgram program = makeSpecProgram(id, InputSet::Ref);
        auto section = journal.section(program.name());

        ExperimentConfig config = baseConfig(
            PredictorKind::Gshare, size_bytes, StaticScheme::None);
        config.counters = journal.counters();
        const double none =
            runExperiment(program, config).stats.mispKi();

        config.scheme = StaticScheme::Static95;
        config.profileInput = InputSet::Ref; // self-trained
        const double self_trained =
            runExperiment(program, config).stats.mispKi();

        config.profileInput = InputSet::Train; // naive cross
        const double naive =
            runExperiment(program, config).stats.mispKi();

        config.filterUnstable = true; // merged/filtered profile
        const double filtered =
            runExperiment(program, config).stats.mispKi();

        std::printf("%-10s %10.2f %10.2f %12.2f %14.2f\n",
                    program.name().c_str(), none, self_trained, naive,
                    filtered);
    }

    std::printf("\nPaper shape: naive cross-training degrades perl "
                "and m88ksim sharply; the >5%% bias-change filter "
                "recovers them.\n");
    journal.finish();
    return 0;
}
