/**
 * @file
 * Reproduces Table 4 of the paper: the effect of shifting the
 * outcomes of statically predicted branches into the global history
 * register, for 2bcgskew at 32 and 64 KB, under both static schemes.
 *
 * Paper shapes to verify: not every program benefits from shifting,
 * but whenever a static scheme *degrades* MISP/KI, adding the shift
 * recovers the loss (the statically predicted branches' outcomes
 * carry correlation information the history-based banks need).
 */

#include <cstdio>

#include "bench_util.hh"

using namespace bpsim;
using namespace bpsim::bench;

namespace
{

double
improvementPct(double base, double with)
{
    return base == 0.0 ? 0.0 : 100.0 * (base - with) / base;
}

} // namespace

int
main(int argc, char **argv)
{
    const BenchOptions options =
        parseBenchOptions(argc, argv, "table4_ghist_shift");
    BenchJournal journal(options, "table4_ghist_shift");
    const std::size_t sizes_kb[] = {32, 64};

    std::printf("Table 4: 2bcgskew, %% MISP/KI improvement over the "
                "pure dynamic baseline\n\n");
    std::printf("%-10s %6s %10s %12s %10s %12s\n", "program", "size",
                "static95", "static95+sh", "staticAcc",
                "staticAcc+sh");

    for (const auto id : allSpecPrograms()) {
        SyntheticProgram program = makeSpecProgram(id, InputSet::Ref);
        auto section = journal.section(program.name());
        for (const std::size_t kb : sizes_kb) {
            ExperimentConfig config =
                baseConfig(PredictorKind::TwoBcGskew, kb * 1024,
                           StaticScheme::None);
            config.counters = journal.counters();
            const double none =
                runExperiment(program, config).stats.mispKi();

            double results[4];
            int i = 0;
            for (const auto scheme :
                 {StaticScheme::Static95, StaticScheme::StaticAcc}) {
                for (const auto shift :
                     {ShiftPolicy::NoShift, ShiftPolicy::ShiftOutcome}) {
                    config.scheme = scheme;
                    config.shift = shift;
                    results[i++] = improvementPct(
                        none,
                        runExperiment(program, config).stats.mispKi());
                }
            }

            std::printf("%-10s %4zuKB %+9.1f%% %+11.1f%% %+9.1f%% "
                        "%+11.1f%%\n",
                        program.name().c_str(), kb, results[0],
                        results[1], results[2], results[3]);
        }
    }

    std::printf("\nPaper shape: where a plain scheme degrades "
                "(negative), its +shift column recovers.\n");
    journal.finish();
    return 0;
}
