/**
 * @file
 * Reproduces Table 2 of the paper: for each program, the percentage
 * of dynamic branch executions attributable to highly biased branches
 * (bias > 95%), and the prediction accuracy of the five dynamic
 * schemes (8 KB each); plus the bias/accuracy correlation the paper
 * highlights.
 */

#include <cstdio>

#include "bench_util.hh"
#include "core/engine.hh"
#include "core/experiment.hh"
#include "support/stats.hh"
#include "workload/specint.hh"

using namespace bpsim;
using namespace bpsim::bench;

int
main(int argc, char **argv)
{
    const BenchOptions options =
        parseBenchOptions(argc, argv, "table2_bias_accuracy");
    BenchJournal journal(options, "table2_bias_accuracy");
    const Count branches = 2'000'000;
    const std::size_t size_bytes = 32768;

    std::printf("Table 2: %% highly biased branches (bias > 95%%) and "
                "prediction accuracy (32 KB predictors, %llu branches)\n\n",
                static_cast<unsigned long long>(branches));
    std::printf("%-10s %10s", "program", "%biased>95");
    for (const auto kind : allPredictorKinds())
        std::printf(" %9s", predictorKindName(kind).c_str());
    std::printf("\n");

    // Correlation of biased fraction vs accuracy, per predictor kind.
    std::vector<Correlation> corr(allPredictorKinds().size());

    for (const auto program_id : allSpecPrograms()) {
        SyntheticProgram program =
            makeSpecProgram(program_id, InputSet::Ref);
        auto section = journal.section(program.name());

        // Bias-only profile to measure the biased fraction.
        program.reset();
        ProfileDb profile = ProfileDb::collect(program, branches);
        const double biased = percent(profile.executedAboveBias(0.95),
                                      profile.totalExecuted());

        std::printf("%-10s %9.1f%%", program.name().c_str(), biased);
        std::size_t i = 0;
        for (const auto kind : allPredictorKinds()) {
            SimStats stats = runBaseline(program, kind, size_bytes,
                                         branches);
            std::printf(" %8.1f%%", stats.accuracyPercent());
            corr[i].add(biased, stats.accuracyPercent());
            ++i;
        }
        std::printf("\n");
    }

    std::printf("\nPearson r (biased%% vs accuracy) per scheme:\n");
    std::size_t i = 0;
    for (const auto kind : allPredictorKinds()) {
        std::printf("  %-9s %.3f\n", predictorKindName(kind).c_str(),
                    corr[i].r());
        ++i;
    }
    std::printf("\nPaper shape: the more highly biased branches a "
                "program executes, the higher every scheme's accuracy "
                "(r close to +1).\n");
    journal.finish();
    return 0;
}
