/**
 * @file
 * google-benchmark microbenchmarks for the simulation engine itself:
 * virtual-dispatch replay vs the devirtualized block kernels vs the
 * batched SIMD-dispatch kernels, per predictor kind, over one
 * materialized trace. Items processed are simulated branches, so the
 * reported rate is branches/second.
 *
 * Plain-shape variants per kind (simulateReplay, no hints/profile):
 *  - virtual:       simulate() over a replay cursor (fastPath off)
 *  - kernel:        record-at-a-time kernels (options.simd off)
 *  - kernel_simd:   batched SIMD-dispatch kernels (options.simd on)
 *  - kernel_nt:     record-at-a-time, trackCollisions off
 *  - kernel_nt_simd batched, trackCollisions off
 *
 * Fused-shape variants per kind (simulateReplayFused over a site
 * index, the experiment runner's hot path):
 *  - gang:      1 unhinted + 3 Static_95 members, record-at-a-time
 *  - gang_simd: the same gang through the batched kernels
 *  - dense:     profile collection onto dense site arrays
 *  - dense_simd the same through the batched kernels
 *
 * Invoked as `microbench_engine --batch-gate` the binary instead runs
 * the CI throughput gate: it times the record-at-a-time and batched
 * kernels side by side over every kind for the plain and gang shapes
 * and exits nonzero when the batched path regresses below the
 * record-at-a-time one (per-shape aggregate over the five kinds, 5%
 * noise tolerance, best of three runs).
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "core/combined_predictor.hh"
#include "core/engine.hh"
#include "predictor/factory.hh"
#include "profile/profile_db.hh"
#include "staticsel/selection.hh"
#include "trace/replay_buffer.hh"
#include "workload/specint.hh"

namespace
{

using namespace bpsim;

constexpr Count traceBranches = 1 << 18;
constexpr std::size_t sizeBytes = 8192;

/** One materialized gcc/ref trace shared by every benchmark. */
const ReplayBuffer &
trace()
{
    static const ReplayBuffer buffer = [] {
        SyntheticProgram program =
            makeSpecProgram(SpecProgram::Gcc, InputSet::Ref);
        return ReplayBuffer::materialize(program, traceBranches);
    }();
    return buffer;
}

/** The trace's site enumeration (fused-path acceleration input). */
const SiteIndex &
sites()
{
    static const SiteIndex index = SiteIndex::build(trace());
    return index;
}

/** Bias-only profile of the trace (feeds Static_95 selection). */
const ProfileDb &
biasProfile()
{
    static const ProfileDb profile = [] {
        auto cursor = trace().cursor();
        return ProfileDb::collect(cursor, traceBranches);
    }();
    return profile;
}

/** Static_95 hint database over the trace (kind-independent). */
const HintDb &
static95Hints()
{
    static const HintDb hints = selectStatic95(biasProfile());
    return hints;
}

enum class Mode
{
    Virtual,
    Kernel,
    KernelSimd,
    KernelNoTrack,
    KernelNoTrackSimd,
};

void
engineThroughput(benchmark::State &state, PredictorKind kind, Mode mode)
{
    auto predictor = makePredictor(kind, sizeBytes);
    const ReplayBuffer &buffer = trace();

    SimOptions options;
    options.fastPath = mode != Mode::Virtual;
    options.trackCollisions = mode != Mode::KernelNoTrack &&
                              mode != Mode::KernelNoTrackSimd;
    options.simd =
        mode == Mode::KernelSimd || mode == Mode::KernelNoTrackSimd;

    for (auto _ : state) {
        bool used_fast = false;
        const SimStats stats =
            simulateReplay(*predictor, buffer, options, &used_fast);
        if (used_fast != (mode != Mode::Virtual))
            state.SkipWithError("unexpected dispatch path");
        benchmark::DoNotOptimize(stats.mispredictions);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(
        state.iterations() * buffer.size()));
}

/**
 * The experiment runner's evaluation shape: one unhinted member and
 * three Static_95 members of the same kind, fused over one trace
 * walk. The hinted members share a gang; the unhinted one runs the
 * gang-of-one (or record-at-a-time) kernel.
 */
struct GangFixture
{
    GangFixture(PredictorKind kind, bool simd)
    {
        for (int member = 0; member < 4; ++member) {
            const bool hinted = member != 0;
            predictors.push_back(std::make_unique<CombinedPredictor>(
                makePredictor(kind, sizeBytes),
                hinted ? static95Hints() : HintDb{},
                ShiftPolicy::NoShift));
            FusedSim sim;
            sim.predictor = predictors.back().get();
            sim.options.simd = simd;
            sims.push_back(sim);
        }
    }

    std::vector<std::unique_ptr<BranchPredictor>> predictors;
    std::vector<FusedSim> sims;
};

void
fusedGangThroughput(benchmark::State &state, PredictorKind kind,
                    bool simd)
{
    GangFixture fixture(kind, simd);
    for (auto _ : state) {
        simulateReplayFused(fixture.sims, trace(), &sites());
        for (const FusedSim &sim : fixture.sims) {
            if (!sim.usedFastPath)
                state.SkipWithError("unexpected dispatch path");
            if (sim.usedSimd != simd)
                state.SkipWithError("unexpected simd path");
        }
        benchmark::DoNotOptimize(
            fixture.sims.front().stats.mispredictions);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(
        state.iterations() * trace().size() * fixture.sims.size()));
}

/** The profile phase's dense shape: outcome and prediction counts
 * accumulated onto site-indexed arrays during the replay. */
void
fusedDenseThroughput(benchmark::State &state, PredictorKind kind,
                     bool simd)
{
    auto predictor = makePredictor(kind, sizeBytes);
    ProfileDb profile;
    std::vector<FusedSim> sims(1);
    sims[0].predictor = predictor.get();
    sims[0].options.profile = &profile;
    sims[0].options.simd = simd;

    for (auto _ : state) {
        simulateReplayFused(sims, trace(), &sites());
        if (!sims[0].usedFastPath)
            state.SkipWithError("unexpected dispatch path");
        if (sims[0].usedSimd != simd)
            state.SkipWithError("unexpected simd path");
        benchmark::DoNotOptimize(sims[0].stats.mispredictions);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(
        state.iterations() * trace().size()));
}

/** All five paper schemes, for the gate loop. */
constexpr PredictorKind gateKinds[] = {
    PredictorKind::Bimodal, PredictorKind::Ghist,
    PredictorKind::Gshare, PredictorKind::BiMode,
    PredictorKind::TwoBcGskew,
};

/** Seconds of wall time for one full pass of @p body. */
template <typename Body>
double
timeOnce(const Body &body)
{
    const auto begin = std::chrono::steady_clock::now();
    body();
    const auto end = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(end - begin).count();
}

/** Best (smallest) wall time of three passes. */
template <typename Body>
double
bestOfThree(const Body &body)
{
    double best = timeOnce(body);
    for (int run = 0; run < 2; ++run)
        best = std::min(best, timeOnce(body));
    return best;
}

/**
 * The CI throughput gate: batched kernels must not regress below the
 * record-at-a-time kernels on either engine shape (aggregate over the
 * five kinds; 5% tolerance absorbs machine noise).
 *
 * @return the process exit code
 */
int
runBatchGate()
{
    constexpr double tolerance = 0.95;
    const Count records = trace().size();
    bool pass = true;

    const auto report = [&](const char *shape, double scalar_seconds,
                            double simd_seconds, Count branches) {
        const double scalar_rate = branches / scalar_seconds;
        const double simd_rate = branches / simd_seconds;
        const bool ok = simd_rate >= scalar_rate * tolerance;
        std::printf("%-6s scalar %8.1fM/s   simd %8.1fM/s   "
                    "%5.2fx  %s\n",
                    shape, scalar_rate / 1e6, simd_rate / 1e6,
                    simd_rate / scalar_rate, ok ? "ok" : "REGRESSED");
        pass = pass && ok;
    };

    std::printf("batch-kernel throughput gate "
                "(aggregate over %zu kinds, best of 3)\n",
                std::size(gateKinds));

    // Plain shape: simulateReplay, no hints or profile. The scalar
    // and batched timings of each kind run back to back so slow
    // frequency drift on the host biases both sides equally.
    double plain_seconds[2] = {};
    for (const PredictorKind kind : gateKinds) {
        for (const bool simd : {false, true}) {
            auto predictor = makePredictor(kind, sizeBytes);
            SimOptions options;
            options.simd = simd;
            plain_seconds[simd] += bestOfThree([&] {
                benchmark::DoNotOptimize(
                    simulateReplay(*predictor, trace(), options)
                        .mispredictions);
            });
        }
    }
    report("plain", plain_seconds[0], plain_seconds[1],
           records * std::size(gateKinds));

    // Gang shape: the fused evaluation pass.
    double gang_seconds[2] = {};
    Count gang_branches = 0;
    for (const PredictorKind kind : gateKinds) {
        for (const bool simd : {false, true}) {
            GangFixture fixture(kind, simd);
            gang_seconds[simd] += bestOfThree([&] {
                simulateReplayFused(fixture.sims, trace(), &sites());
            });
            if (!simd)
                gang_branches += records * fixture.sims.size();
        }
    }
    report("gang", gang_seconds[0], gang_seconds[1], gang_branches);

    std::printf("gate: %s\n", pass ? "pass" : "FAIL");
    return pass ? 0 : 1;
}

} // namespace

#define BPSIM_ENGINE_BENCH(name, kind)                                 \
    BENCHMARK_CAPTURE(engineThroughput, name##_virtual,                \
                      PredictorKind::kind, Mode::Virtual)              \
        ->Unit(benchmark::kMillisecond);                               \
    BENCHMARK_CAPTURE(engineThroughput, name##_kernel,                 \
                      PredictorKind::kind, Mode::Kernel)               \
        ->Unit(benchmark::kMillisecond);                               \
    BENCHMARK_CAPTURE(engineThroughput, name##_kernel_simd,            \
                      PredictorKind::kind, Mode::KernelSimd)           \
        ->Unit(benchmark::kMillisecond);                               \
    BENCHMARK_CAPTURE(engineThroughput, name##_kernel_nt,              \
                      PredictorKind::kind, Mode::KernelNoTrack)        \
        ->Unit(benchmark::kMillisecond);                               \
    BENCHMARK_CAPTURE(engineThroughput, name##_kernel_nt_simd,         \
                      PredictorKind::kind, Mode::KernelNoTrackSimd)    \
        ->Unit(benchmark::kMillisecond);                               \
    BENCHMARK_CAPTURE(fusedGangThroughput, name##_gang,                \
                      PredictorKind::kind, false)                      \
        ->Unit(benchmark::kMillisecond);                               \
    BENCHMARK_CAPTURE(fusedGangThroughput, name##_gang_simd,           \
                      PredictorKind::kind, true)                       \
        ->Unit(benchmark::kMillisecond);                               \
    BENCHMARK_CAPTURE(fusedDenseThroughput, name##_dense,              \
                      PredictorKind::kind, false)                      \
        ->Unit(benchmark::kMillisecond);                               \
    BENCHMARK_CAPTURE(fusedDenseThroughput, name##_dense_simd,         \
                      PredictorKind::kind, true)                       \
        ->Unit(benchmark::kMillisecond)

BPSIM_ENGINE_BENCH(bimodal, Bimodal);
BPSIM_ENGINE_BENCH(ghist, Ghist);
BPSIM_ENGINE_BENCH(gshare, Gshare);
BPSIM_ENGINE_BENCH(bimode, BiMode);
BPSIM_ENGINE_BENCH(gskew2bc, TwoBcGskew);

int
main(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--batch-gate") == 0)
            return runBatchGate();
    }
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
