/**
 * @file
 * google-benchmark microbenchmarks for the simulation engine itself:
 * virtual-dispatch replay vs the devirtualized block kernels, per
 * predictor kind, over one materialized trace. Items processed are
 * simulated branches, so the reported rate is branches/second.
 *
 * Three variants per kind:
 *  - virtual:   simulate() over a replay cursor (fastPath off)
 *  - kernel:    simulateReplay() with collision tracking (what the
 *               experiment runner executes)
 *  - kernel_nt: simulateReplay() with trackCollisions off — the
 *               tag bookkeeping compiled out, an upper bound for
 *               runs that don't need collision numbers
 */

#include <benchmark/benchmark.h>

#include "core/engine.hh"
#include "predictor/factory.hh"
#include "trace/replay_buffer.hh"
#include "workload/specint.hh"

namespace
{

using namespace bpsim;

constexpr Count traceBranches = 1 << 18;
constexpr std::size_t sizeBytes = 8192;

/** One materialized gcc/ref trace shared by every benchmark. */
const ReplayBuffer &
trace()
{
    static const ReplayBuffer buffer = [] {
        SyntheticProgram program =
            makeSpecProgram(SpecProgram::Gcc, InputSet::Ref);
        return ReplayBuffer::materialize(program, traceBranches);
    }();
    return buffer;
}

enum class Mode
{
    Virtual,
    Kernel,
    KernelNoTrack,
};

void
engineThroughput(benchmark::State &state, PredictorKind kind, Mode mode)
{
    auto predictor = makePredictor(kind, sizeBytes);
    const ReplayBuffer &buffer = trace();

    SimOptions options;
    options.fastPath = mode != Mode::Virtual;
    options.trackCollisions = mode != Mode::KernelNoTrack;

    for (auto _ : state) {
        bool used_fast = false;
        const SimStats stats =
            simulateReplay(*predictor, buffer, options, &used_fast);
        if (used_fast != (mode != Mode::Virtual))
            state.SkipWithError("unexpected dispatch path");
        benchmark::DoNotOptimize(stats.mispredictions);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(
        state.iterations() * buffer.size()));
}

} // namespace

#define BPSIM_ENGINE_BENCH(name, kind)                                 \
    BENCHMARK_CAPTURE(engineThroughput, name##_virtual,                \
                      PredictorKind::kind, Mode::Virtual)              \
        ->Unit(benchmark::kMillisecond);                               \
    BENCHMARK_CAPTURE(engineThroughput, name##_kernel,                 \
                      PredictorKind::kind, Mode::Kernel)               \
        ->Unit(benchmark::kMillisecond);                               \
    BENCHMARK_CAPTURE(engineThroughput, name##_kernel_nt,              \
                      PredictorKind::kind, Mode::KernelNoTrack)        \
        ->Unit(benchmark::kMillisecond)

BPSIM_ENGINE_BENCH(bimodal, Bimodal);
BPSIM_ENGINE_BENCH(ghist, Ghist);
BPSIM_ENGINE_BENCH(gshare, Gshare);
BPSIM_ENGINE_BENCH(bimode, BiMode);
BPSIM_ENGINE_BENCH(gskew2bc, TwoBcGskew);

BENCHMARK_MAIN();
