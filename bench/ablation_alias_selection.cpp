/**
 * @file
 * Ablation bench for the paper's stated future work (§5): selecting
 * branches for static prediction by their *collision involvement*
 * rather than by bias alone. Compares, for gshare across sizes on
 * the two alias-dominated programs (go, gcc):
 *
 *   - Static_95   (bias-only selection, the paper's scheme)
 *   - Static_Alias (bias > 90% AND collision rate above threshold)
 *
 * plus the hint counts, showing Static_Alias spends far fewer hint
 * bits for a comparable share of the aliasing relief.
 */

#include <cstdio>

#include "bench_util.hh"

using namespace bpsim;
using namespace bpsim::bench;

int
main()
{
    const std::size_t sizes_kb[] = {1, 2, 4, 8};

    std::printf("Ablation: bias-only vs collision-aware static "
                "selection (gshare)\n\n");
    std::printf("%-8s %6s %10s | %10s %8s | %10s %8s\n", "program",
                "size", "base", "static95", "hints", "st_alias",
                "hints");

    for (const auto id : {SpecProgram::Go, SpecProgram::Gcc}) {
        SyntheticProgram program = makeSpecProgram(id, InputSet::Ref);
        for (const std::size_t kb : sizes_kb) {
            ExperimentConfig config = baseConfig(
                PredictorKind::Gshare, kb * 1024, StaticScheme::None);
            const double base =
                runExperiment(program, config).stats.mispKi();

            config.scheme = StaticScheme::Static95;
            const ExperimentResult s95 =
                runExperiment(program, config);

            config.scheme = StaticScheme::StaticAlias;
            const ExperimentResult alias =
                runExperiment(program, config);

            std::printf("%-8s %4zuKB %10.2f | %10.2f %8zu | %10.2f "
                        "%8zu\n",
                        program.name().c_str(), kb, base,
                        s95.stats.mispKi(), s95.hintCount,
                        alias.stats.mispKi(), alias.hintCount);
        }
    }

    std::printf("\nExpected shape: static_alias selects fewer "
                "branches (only the contested ones) while capturing "
                "much of the same MISP/KI relief at small sizes.\n");
    return 0;
}
