/**
 * @file
 * Ablation bench for the paper's stated future work (§5): selecting
 * branches for static prediction by their *collision involvement*
 * rather than by bias alone. Compares, for gshare across sizes on
 * the two alias-dominated programs (go, gcc):
 *
 *   - Static_95   (bias-only selection, the paper's scheme)
 *   - Static_Alias (bias > 90% AND collision rate above threshold)
 *
 * plus the hint counts, showing Static_Alias spends far fewer hint
 * bits for a comparable share of the aliasing relief. Runs as a
 * parallel matrix over shared replay buffers.
 */

#include <cstdio>

#include "bench_util.hh"

using namespace bpsim;
using namespace bpsim::bench;

int
main(int argc, char **argv)
{
    const BenchOptions options =
        parseBenchOptions(argc, argv, "ablation_alias_selection");
    const std::size_t sizes_kb[] = {1, 2, 4, 8};
    const StaticScheme schemes[] = {StaticScheme::None,
                                    StaticScheme::Static95,
                                    StaticScheme::StaticAlias};

    const auto journal =
        makeJournal(options, "ablation_alias_selection");
    ExperimentRunner runner(runnerOptions(options, journal.get()));
    for (const auto id : {SpecProgram::Go, SpecProgram::Gcc}) {
        const std::size_t program =
            runner.addProgram(makeSpecProgram(id, InputSet::Ref));
        for (const std::size_t kb : sizes_kb) {
            for (const auto scheme : schemes) {
                ExperimentConfig config = baseConfig(
                    PredictorKind::Gshare, kb * 1024, scheme);
                config.evalWarmupBranches = options.warmupBranches;
                runner.addCell(program, config);
            }
        }
    }
    const MatrixResult result = runner.run();

    std::printf("Ablation: bias-only vs collision-aware static "
                "selection (gshare)\n\n");
    std::printf("%-8s %6s %10s | %10s %8s | %10s %8s\n", "program",
                "size", "base", "static95", "hints", "st_alias",
                "hints");

    std::size_t cell = 0;
    for (std::size_t p = 0; p < runner.programCount(); ++p) {
        for (const std::size_t kb : sizes_kb) {
            const double base =
                result.cells[cell++].result.stats.mispKi();
            const ExperimentResult &s95 =
                result.cells[cell++].result;
            const ExperimentResult &alias =
                result.cells[cell++].result;

            std::printf("%-8s %4zuKB %10.2f | %10.2f %8zu | %10.2f "
                        "%8zu\n",
                        runner.program(p).name().c_str(), kb, base,
                        s95.stats.mispKi(), s95.hintCount,
                        alias.stats.mispKi(), alias.hintCount);
        }
    }

    std::printf("\nExpected shape: static_alias selects fewer "
                "branches (only the contested ones) while capturing "
                "much of the same MISP/KI relief at small sizes.\n");

    if (!options.jsonPath.empty()) {
        writeRunnerJson(options.jsonPath, "ablation_alias_selection",
                        runner, result, options.baselineSeconds);
    }
    writeJournal(options, journal.get());
    return 0;
}
