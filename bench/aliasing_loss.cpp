/**
 * @file
 * Companion measurement to the whole paper: how many mispredictions
 * per KI are *caused by aliasing* — the gap between a real gshare and
 * an interference-free gshare with the same history length — and what
 * fraction of that aliasing loss each static scheme recovers.
 *
 * loss(size)        = MISP/KI(gshare, size) - MISP/KI(ideal)
 * recovered(scheme) = (MISP/KI(gshare) - MISP/KI(gshare+scheme))
 *                     / loss
 */

#include <cstdio>

#include "bench_util.hh"
#include "core/engine.hh"
#include "predictor/gshare.hh"
#include "predictor/ideal_gshare.hh"

using namespace bpsim;
using namespace bpsim::bench;

int
main(int argc, char **argv)
{
    const BenchOptions bench_options =
        parseBenchOptions(argc, argv, "aliasing_loss");
    BenchJournal journal(bench_options, "aliasing_loss");
    const std::size_t size_bytes = 4096; // 13-bit index and history

    std::printf("Aliasing loss at gshare 4 KB (vs interference-free "
                "gshare, same 13-bit history)\n\n");
    std::printf("%-10s %8s %8s %8s | %10s %10s\n", "program", "real",
                "ideal", "loss", "s95 rec.", "acc rec.");

    for (const auto id : allSpecPrograms()) {
        SyntheticProgram program = makeSpecProgram(id, InputSet::Ref);
        auto section = journal.section(program.name());

        SimOptions options;
        options.maxBranches = evalBranches;
        options.counters = journal.counters();

        Gshare real(size_bytes);
        const double real_misp =
            simulate(real, program, options).mispKi();

        IdealGshare ideal(13);
        const double ideal_misp =
            simulate(ideal, program, options).mispKi();

        const double loss = real_misp - ideal_misp;

        auto recovered = [&](StaticScheme scheme) {
            ExperimentConfig config = baseConfig(
                PredictorKind::Gshare, size_bytes, scheme);
            config.counters = journal.counters();
            const double with =
                runExperiment(program, config).stats.mispKi();
            return loss > 0.0
                       ? 100.0 * (real_misp - with) / loss
                       : 0.0;
        };

        const double s95 = recovered(StaticScheme::Static95);
        const double acc = recovered(StaticScheme::StaticAcc);
        std::printf("%-10s %8.2f %8.2f %8.2f | %9.1f%% %9.1f%%\n",
                    program.name().c_str(), real_misp, ideal_misp,
                    loss, s95, acc);
    }

    std::printf("\nReading: 'loss' is the misprediction cost of "
                "destructive aliasing; the recovery columns show how "
                "much of it profile-directed static prediction buys "
                "back (Static_Acc can exceed 100%% because it also "
                "statically fixes branches the ideal predictor "
                "mispredicts).\n");
    journal.finish();
    return 0;
}
