/**
 * @file
 * Reproduces Table 1 of the paper: static and dynamic characteristics
 * of the six (synthetic) SPECINT95 programs under both inputs.
 *
 * The static columns come from the synthesised program structure; the
 * dynamic columns from bounded simulation runs. Absolute dynamic
 * instruction counts are smaller than the paper's (billions on real
 * hardware vs millions here) by design; CBRs/KI and the static branch
 * counts are the calibrated quantities.
 */

#include <cstdio>

#include "bench_util.hh"
#include "core/engine.hh"
#include "predictor/bimodal.hh"

using namespace bpsim;
using namespace bpsim::bench;

int
main(int argc, char **argv)
{
    const BenchOptions options =
        parseBenchOptions(argc, argv, "table1_characteristics");
    BenchJournal journal(options, "table1_characteristics");

    std::printf("Table 1: program characteristics (synthetic stand-ins"
                ")\n\n");
    std::printf("%-10s %12s %12s | %14s %10s | %14s %10s\n", "program",
                "#insts(stat)", "#CBRs(stat)", "train #dyn-inst",
                "train CBR/KI", "ref #dyn-inst", "ref CBR/KI");

    for (const auto id : allSpecPrograms()) {
        SyntheticProgram program = makeSpecProgram(id, InputSet::Train);
        auto section = journal.section(program.name());

        // A throwaway predictor: Table 1 only needs stream statistics.
        Bimodal counter_only(2048);

        SimOptions sim_options;
        sim_options.maxBranches = evalBranches;
        sim_options.counters = journal.counters();
        SimStats train = simulate(counter_only, program, sim_options);

        program.setInput(InputSet::Ref);
        SimStats ref = simulate(counter_only, program, sim_options);

        std::printf("%-10s %12llu %12zu | %14llu %10.0f | %14llu "
                    "%10.0f\n",
                    program.name().c_str(),
                    static_cast<unsigned long long>(
                        program.staticInstructionEstimate()),
                    program.staticBranchCount(),
                    static_cast<unsigned long long>(train.instructions),
                    train.cbrsKi(),
                    static_cast<unsigned long long>(ref.instructions),
                    ref.cbrsKi());
    }

    std::printf("\nPaper shape: every 7th-8th instruction is a "
                "conditional branch (CBRs/KI 108-156), except ijpeg "
                "(~61); gcc has by far the most static branches.\n");
    journal.finish();
    return 0;
}
