/**
 * @file
 * Reproduces Table 3 of the paper: percentage MISP/KI improvement of
 * 2bcgskew with Static_95 and Static_Acc for go and gcc at sizes
 * 2-32 KB.
 *
 * Paper shapes to verify: improvements shrink as the predictor grows
 * (and can go negative for go at large sizes); gcc benefits more than
 * go at every size; Static_Acc beats Static_95.
 */

#include <cstdio>

#include "bench_util.hh"

using namespace bpsim;
using namespace bpsim::bench;

int
main(int argc, char **argv)
{
    const BenchOptions options =
        parseBenchOptions(argc, argv, "table3_2bcgskew_small");
    BenchJournal journal(options, "table3_2bcgskew_small");
    const std::size_t sizes_kb[] = {2, 4, 8, 16, 32};
    const SpecProgram programs[] = {SpecProgram::Go, SpecProgram::Gcc};

    std::printf("Table 3: 2bcgskew MISP/KI improvement with static "
                "prediction (go & gcc)\n\n");
    std::printf("%8s", "size");
    for (const auto id : programs) {
        const std::string name = specProgramName(id);
        std::printf(" | %8s:s95 %8s:acc", name.c_str(), name.c_str());
    }
    std::printf("\n");

    for (const std::size_t kb : sizes_kb) {
        std::printf("%6zuKB", kb);
        auto section =
            journal.section(std::to_string(kb) + "KB");
        for (const auto id : programs) {
            SyntheticProgram program =
                makeSpecProgram(id, InputSet::Ref);

            ExperimentConfig config =
                baseConfig(PredictorKind::TwoBcGskew, kb * 1024,
                           StaticScheme::None);
            config.counters = journal.counters();
            const double none =
                runExperiment(program, config).stats.mispKi();

            config.scheme = StaticScheme::Static95;
            const double s95 =
                runExperiment(program, config).stats.mispKi();

            config.scheme = StaticScheme::StaticAcc;
            const double acc =
                runExperiment(program, config).stats.mispKi();

            std::printf(" | %12s %12s",
                        formatImprovement(none, s95).c_str(),
                        formatImprovement(none, acc).c_str());
        }
        std::printf("\n");
    }

    std::printf("\nPaper shape: gains shrink with size; gcc > go at "
                "every size; go goes negative at 16-32 KB.\n");
    journal.finish();
    return 0;
}
