/**
 * @file
 * Reproduces Table 5 of the paper: how branch behaviour changes when
 * the input moves from 'train' to 'ref' — profile coverage, majority
 * direction reversals, and the size of bias drifts, each weighted
 * statically (per branch) and dynamically (per execution).
 *
 * Paper shapes to verify: train covers almost all ref branches except
 * for perl; a non-trivial fraction of branches flips its majority
 * direction (largest for perl/m88ksim where the flipping branches are
 * hot); most branches move by <5% bias, a small tail by >50%.
 */

#include <cstdio>

#include "bench_util.hh"
#include "profile/profile_db.hh"

using namespace bpsim;
using namespace bpsim::bench;

int
main()
{
    std::printf("Table 5: branch behaviour, train vs ref input "
                "(static%% / dynamic%%)\n\n");
    std::printf("%-10s %16s %18s %18s %18s\n", "program",
                "seen w/ train", "majority flip", "bias chg <5%",
                "bias chg >50%");

    for (const auto id : allSpecPrograms()) {
        SyntheticProgram program = makeSpecProgram(id, InputSet::Train);
        ProfileDb train =
            ProfileDb::collect(program, 4 * evalBranches);

        program.setInput(InputSet::Ref);
        ProfileDb ref =
            ProfileDb::collect(program, 4 * evalBranches);

        const CrossInputStats stats = compareProfiles(train, ref);
        std::printf("%-10s %7.1f%% / %5.1f%% %8.1f%% / %5.1f%% "
                    "%8.1f%% / %5.1f%% %8.1f%% / %5.1f%%\n",
                    program.name().c_str(), stats.seenWithTrainStatic,
                    stats.seenWithTrainDynamic,
                    stats.majorityFlipStatic,
                    stats.majorityFlipDynamic,
                    stats.biasChangeUnder5Static,
                    stats.biasChangeUnder5Dynamic,
                    stats.biasChangeOver50Static,
                    stats.biasChangeOver50Dynamic);
    }
    return 0;
}
