/**
 * @file
 * Reproduces Table 5 of the paper: how branch behaviour changes when
 * the input moves from 'train' to 'ref' — profile coverage, majority
 * direction reversals, and the size of bias drifts, each weighted
 * statically (per branch) and dynamically (per execution).
 *
 * Each program's train and ref streams are materialized once into
 * replay buffers and the per-program profile comparisons run across
 * the runner's thread pool.
 *
 * Paper shapes to verify: train covers almost all ref branches except
 * for perl; a non-trivial fraction of branches flips its majority
 * direction (largest for perl/m88ksim where the flipping branches are
 * hot); most branches move by <5% bias, a small tail by >50%.
 */

#include <cstdio>
#include <vector>

#include "bench_util.hh"
#include "profile/profile_db.hh"

using namespace bpsim;
using namespace bpsim::bench;

int
main(int argc, char **argv)
{
    const BenchOptions options =
        parseBenchOptions(argc, argv, "table5_cross_input");
    const Count profile_len = 4 * evalBranches;

    BenchJournal journal(options, "table5_cross_input");
    ExperimentRunner runner(runnerOptions(options, journal.get()));
    for (const auto id : allSpecPrograms()) {
        const std::size_t program =
            runner.addProgram(makeSpecProgram(id, InputSet::Train));
        runner.requireBuffer(program, InputSet::Train, profile_len);
        runner.requireBuffer(program, InputSet::Ref, profile_len);
    }
    {
        auto section = journal.section("materialize");
        runner.materialize();
    }

    std::vector<CrossInputStats> rows(runner.programCount());
    {
        auto section = journal.section("compare_profiles");
        runner.pool().parallelFor(
            runner.programCount(), [&](std::size_t p) {
                ReplayBuffer::Cursor train_stream =
                    runner.buffer(p, InputSet::Train).cursor();
                const ProfileDb train =
                    ProfileDb::collect(train_stream, profile_len);

                ReplayBuffer::Cursor ref_stream =
                    runner.buffer(p, InputSet::Ref).cursor();
                const ProfileDb ref =
                    ProfileDb::collect(ref_stream, profile_len);

                rows[p] = compareProfiles(train, ref);
            });
    }

    std::printf("Table 5: branch behaviour, train vs ref input "
                "(static%% / dynamic%%)\n\n");
    std::printf("%-10s %16s %18s %18s %18s\n", "program",
                "seen w/ train", "majority flip", "bias chg <5%",
                "bias chg >50%");

    for (std::size_t p = 0; p < runner.programCount(); ++p) {
        const CrossInputStats &stats = rows[p];
        std::printf("%-10s %7.1f%% / %5.1f%% %8.1f%% / %5.1f%% "
                    "%8.1f%% / %5.1f%% %8.1f%% / %5.1f%%\n",
                    runner.program(p).name().c_str(),
                    stats.seenWithTrainStatic,
                    stats.seenWithTrainDynamic,
                    stats.majorityFlipStatic,
                    stats.majorityFlipDynamic,
                    stats.biasChangeUnder5Static,
                    stats.biasChangeUnder5Dynamic,
                    stats.biasChangeOver50Static,
                    stats.biasChangeOver50Dynamic);
    }
    journal.finish();
    return 0;
}
