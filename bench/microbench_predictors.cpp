/**
 * @file
 * google-benchmark microbenchmarks: predict/update/history throughput
 * of every predictor kind at several sizes, and the synthetic
 * workload generator's record throughput. These are engineering
 * benchmarks for the simulator itself, not paper reproductions.
 */

#include <benchmark/benchmark.h>

#include "predictor/factory.hh"
#include "support/random.hh"
#include "trace/branch_record.hh"
#include "workload/specint.hh"

namespace
{

using namespace bpsim;

/** A fixed pseudo-random branch stream shared by the benchmarks. */
const std::vector<std::pair<Addr, bool>> &
stimulus()
{
    static const auto data = [] {
        std::vector<std::pair<Addr, bool>> records;
        Rng rng(99);
        records.reserve(1 << 14);
        for (int i = 0; i < (1 << 14); ++i) {
            records.emplace_back(0x120000000ULL +
                                     4 * rng.nextBelow(4096),
                                 rng.chance(0.6));
        }
        return records;
    }();
    return data;
}

void
predictorThroughput(benchmark::State &state, const std::string &spec)
{
    auto predictor = makePredictor(spec);
    const auto &records = stimulus();
    std::size_t i = 0;
    for (auto _ : state) {
        const auto &[pc, taken] = records[i++ & (records.size() - 1)];
        benchmark::DoNotOptimize(predictor->predict(pc));
        predictor->update(pc, taken);
        predictor->updateHistory(taken);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}

void
workloadThroughput(benchmark::State &state)
{
    SyntheticProgram program =
        makeSpecProgram(SpecProgram::Gcc, InputSet::Ref);
    BranchRecord record;
    for (auto _ : state) {
        program.next(record);
        benchmark::DoNotOptimize(record.pc);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}

} // namespace

BENCHMARK_CAPTURE(predictorThroughput, bimodal_8k, "bimodal:8192");
BENCHMARK_CAPTURE(predictorThroughput, ghist_8k, "ghist:8192");
BENCHMARK_CAPTURE(predictorThroughput, gshare_8k, "gshare:8192");
BENCHMARK_CAPTURE(predictorThroughput, bimode_8k, "bimode:8192");
BENCHMARK_CAPTURE(predictorThroughput, gskew2bc_8k, "2bcgskew:8192");
BENCHMARK_CAPTURE(predictorThroughput, gshare_64k, "gshare:65536");
BENCHMARK_CAPTURE(predictorThroughput, gskew2bc_64k, "2bcgskew:65536");
BENCHMARK_CAPTURE(predictorThroughput, gselect_8k, "gselect:8192");
BENCHMARK_CAPTURE(predictorThroughput, agree_8k, "agree:8192");
BENCHMARK_CAPTURE(predictorThroughput, tournament_8k, "tournament:8192");
BENCHMARK(workloadThroughput);

BENCHMARK_MAIN();
