/**
 * @file
 * Small shared helpers for the table/figure reproduction benches.
 */

#ifndef BPSIM_BENCH_BENCH_UTIL_HH
#define BPSIM_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <string>

#include "core/experiment.hh"
#include "core/runner.hh"
#include "support/args.hh"
#include "workload/specint.hh"

namespace bpsim::bench
{

/** Branches simulated per evaluation run in the benches. */
constexpr Count evalBranches = 2'000'000;

/** Branches simulated per profiling (selection-phase) run. */
constexpr Count profileBranches = 1'000'000;

/**
 * Wall time of the fig7_12 matrix on the seed's serial, regenerating
 * path (one thread, no replay buffers), measured on the reference
 * container. The default --baseline-seconds, so speedup_vs_baseline
 * tracks the same denominator across PRs unless a run overrides it
 * with a freshly measured value.
 */
constexpr double seedBaselineSeconds = 14.1;

/** Shared experiment defaults. */
inline ExperimentConfig
baseConfig(PredictorKind kind, std::size_t size_bytes,
           StaticScheme scheme)
{
    ExperimentConfig config;
    config.kind = kind;
    config.sizeBytes = size_bytes;
    config.scheme = scheme;
    config.profileBranches = profileBranches;
    config.evalBranches = evalBranches;
    return config;
}

/** Options shared by the runner-based benches. */
struct BenchOptions
{
    /** Worker threads (already resolved; never 0). */
    unsigned threads = 1;

    /** Per-cell timing JSON output path; empty = disabled. */
    std::string jsonPath;

    /** Externally measured serial-path wall time (0 = unknown). */
    double baselineSeconds = 0.0;
};

/**
 * Parse the shared bench options (--threads / --json /
 * --baseline-seconds). @p default_json names the JSON file written
 * when --json is not given; pass "" to disable by default.
 * @p default_baseline seeds --baseline-seconds (benches tracking the
 * committed baseline pass seedBaselineSeconds; 0 leaves the JSON's
 * speedup_vs_baseline off unless the flag is given).
 */
inline BenchOptions
parseBenchOptions(int argc, char **argv, const char *tool,
                  const char *default_json = "",
                  double default_baseline = 0.0)
{
    char default_baseline_str[32];
    std::snprintf(default_baseline_str, sizeof(default_baseline_str),
                  "%g", default_baseline);

    ArgParser args(tool);
    addThreadsOption(args);
    args.addOption("json", default_json,
                   "write per-cell timing JSON to this path "
                   "(empty = disabled)");
    args.addOption("baseline-seconds", default_baseline_str,
                   "serial-path wall time measured externally; "
                   "recorded in the JSON for speedup tracking");
    args.parse(argc, argv);

    BenchOptions options;
    options.threads = threadsFromArgs(args);
    options.jsonPath = args.get("json");
    options.baselineSeconds = args.getDouble("baseline-seconds");
    return options;
}

/** Percentage improvement (positive = better) formatted as "+x.x%". */
inline std::string
formatImprovement(double base_misp_ki, double with_misp_ki)
{
    if (base_misp_ki == 0.0)
        return "  n/a";
    const double pct =
        100.0 * (base_misp_ki - with_misp_ki) / base_misp_ki;
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%+5.1f%%", pct);
    return buf;
}

} // namespace bpsim::bench

#endif // BPSIM_BENCH_BENCH_UTIL_HH
