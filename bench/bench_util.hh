/**
 * @file
 * Small shared helpers for the table/figure reproduction benches.
 */

#ifndef BPSIM_BENCH_BENCH_UTIL_HH
#define BPSIM_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <memory>
#include <string>
#include <utility>

#include "core/experiment.hh"
#include "core/runner.hh"
#include "core/simd.hh"
#include "obs/run_journal.hh"
#include "support/args.hh"
#include "workload/specint.hh"

namespace bpsim::bench
{

/** Branches simulated per evaluation run in the benches. */
constexpr Count evalBranches = 2'000'000;

/** Branches simulated per profiling (selection-phase) run. */
constexpr Count profileBranches = 1'000'000;

/**
 * One-thread wall time of the fig7_12 matrix on the current code,
 * measured on the reference container (kept in sync with the
 * committed BENCH_runner.json). The default --baseline-seconds, so
 * speedup_vs_baseline honestly tracks "vs a current serial run"
 * rather than a long-retired regenerating path, unless a run
 * overrides it with a freshly measured value.
 */
constexpr double seedBaselineSeconds = 3.5;

/**
 * One-thread wall time of the fig_multicontext matrix on the
 * reference container. Scenario cells run the record-at-a-time
 * engine with per-branch attribution attached (the dense-profile
 * SIMD kernel bypasses the tag path the attribution reads), so this
 * baseline is measured on that path, not the batch kernels.
 */
constexpr double multicontextBaselineSeconds = 13.5;

/** Shared experiment defaults. */
inline ExperimentConfig
baseConfig(PredictorKind kind, std::size_t size_bytes,
           StaticScheme scheme)
{
    ExperimentConfig config;
    config.kind = kind;
    config.sizeBytes = size_bytes;
    config.scheme = scheme;
    config.profileBranches = profileBranches;
    config.evalBranches = evalBranches;
    return config;
}

/** Options shared by the runner-based benches. */
struct BenchOptions
{
    /** Worker threads (already resolved; never 0). */
    unsigned threads = 1;

    /** Per-cell timing JSON output path; empty = disabled. */
    std::string jsonPath;

    /** Externally measured serial-path wall time (0 = unknown). */
    double baselineSeconds = 0.0;

    /** Run-journal JSONL output path; empty = journaling disabled.
     * The metrics summary lands next to it (see
     * obs::RunJournal::metricsPathFor()). */
    std::string journalPath;

    /**
     * Evaluation warmup branches simulated ahead of the measured
     * window. Counted exactly once in each cell's simulatedBranches
     * (the experiment core owns that accounting), so the wall-time
     * and throughput reporting never double-counts warmup — and like
     * every option, a repeated --warmup keeps only the last value.
     */
    Count warmupBranches = 0;

    /** Sweep checkpoint path (--checkpoint; empty = off). */
    std::string checkpointPath;

    /** Restore finished cells from the checkpoint (--resume). */
    bool resume = false;

    /** Extra attempts for transient cell failures (--retries). */
    unsigned retries = 0;

    /** Abort the sweep at the first failed cell (--fail-fast). */
    bool failFast = false;

    /** Fused sweep execution (--fused / --no-fused; on by default).
     * Cells sharing a replay buffer are stepped in one pass; results
     * are bit-identical either way. */
    bool fused = true;

    /** Batched SIMD-dispatch kernels (--simd / --no-simd; on by
     * default). Results are bit-identical either way; --no-simd runs
     * the record-at-a-time reference kernels for differential
     * comparison. BPSIM_SIMD=off|scalar|avx2|neon further overrides
     * the resolved level at engine dispatch time. */
    bool simd = true;

    /** Content-addressed artifact cache directory (--cache-dir;
     * empty = off). Shared safely by concurrent shard processes. */
    std::string cacheDir;

    /** 1-based shard index (--shard i/N; 1/1 = whole matrix). */
    unsigned shardIndex = 1;

    /** Total shards the matrix is split across. */
    unsigned shardCount = 1;
};

/**
 * Parse the shared bench options (--threads / --json /
 * --baseline-seconds). @p default_json names the JSON file written
 * when --json is not given; pass "" to disable by default.
 * @p default_baseline seeds --baseline-seconds (benches tracking the
 * committed baseline pass seedBaselineSeconds; 0 leaves the JSON's
 * speedup_vs_baseline off unless the flag is given).
 */
inline BenchOptions
parseBenchOptions(int argc, char **argv, const char *tool,
                  const char *default_json = "",
                  double default_baseline = 0.0)
{
    char default_baseline_str[32];
    std::snprintf(default_baseline_str, sizeof(default_baseline_str),
                  "%g", default_baseline);

    ArgParser args(tool);
    addThreadsOption(args);
    args.addOption("json", default_json,
                   "write per-cell timing JSON to this path "
                   "(empty = disabled)");
    args.addOption("baseline-seconds", default_baseline_str,
                   "serial-path wall time measured externally; "
                   "recorded in the JSON for speedup tracking");
    args.addOption("journal", "",
                   "write the structured run journal (JSONL) to this "
                   "path; its metrics summary lands next to it "
                   "(empty = disabled)");
    args.addOption("warmup", "0",
                   "evaluation warmup branches before the measured "
                   "window (repeating the option keeps the last "
                   "value)");
    args.addOption("checkpoint", "",
                   "persist each finished cell to this JSONL "
                   "checkpoint (empty = disabled)");
    args.addFlag("resume",
                 "restore finished cells from --checkpoint instead "
                 "of re-running them");
    args.addOption("retries", "0",
                   "extra attempts for transient "
                   "(resource_exhausted) cell failures");
    args.addFlag("fail-fast",
                 "abort the sweep at the first failed cell");
    args.addFlag("fused",
                 "fuse cells sharing a replay buffer into one pass "
                 "(default; results are bit-identical either way)");
    args.addFlag("no-fused",
                 "run every cell's evaluation as its own pass "
                 "(overrides --fused)");
    args.addFlag("simd",
                 "run the batched SIMD-dispatch kernels (default; "
                 "results are bit-identical either way)");
    args.addFlag("no-simd",
                 "run the record-at-a-time reference kernels "
                 "(overrides --simd)");
    args.addOption("shard", "",
                   "execute only shard i of N (1-based \"i/N\"); "
                   "cells are partitioned by fingerprint hash");
    args.addOption("cache-dir", "",
                   "content-addressed artifact cache directory "
                   "shared across processes (empty = disabled)");
    args.parse(argc, argv);

    BenchOptions options;
    options.threads = threadsFromArgs(args);
    options.jsonPath = args.get("json");
    options.baselineSeconds = args.getDouble("baseline-seconds");
    options.journalPath = args.get("journal");
    options.warmupBranches = args.getUint("warmup");
    options.checkpointPath = args.get("checkpoint");
    options.resume = args.getFlag("resume");
    options.retries = static_cast<unsigned>(args.getUint("retries"));
    options.failFast = args.getFlag("fail-fast");
    options.fused = !args.getFlag("no-fused");
    options.simd = !args.getFlag("no-simd");
    options.cacheDir = args.get("cache-dir");
    if (!args.get("shard").empty()) {
        const Result<std::pair<unsigned, unsigned>> shard =
            parseShardSpec(args.get("shard"));
        if (!shard.ok()) {
            std::fprintf(stderr, "%s: error %s\n", tool,
                         shard.error().describe().c_str());
            std::exit(usageExitCode);
        }
        options.shardIndex = shard.value().first;
        options.shardCount = shard.value().second;
    }
    if (options.resume && options.checkpointPath.empty()) {
        std::fprintf(stderr,
                     "%s: error [config_invalid] --resume needs "
                     "--checkpoint\n",
                     tool);
        std::exit(usageExitCode);
    }
    return options;
}

/**
 * Journal for a bench run: constructed only when --journal was given
 * (the runner and the write helpers all accept null). The runner
 * records run_begin/run_end itself; manual benches use BenchJournal
 * below instead.
 */
inline std::unique_ptr<obs::RunJournal>
makeJournal(const BenchOptions &options, std::string label)
{
    if (options.journalPath.empty())
        return nullptr;
    return std::make_unique<obs::RunJournal>(std::move(label));
}

/** RunnerOptions carrying the bench's thread count, journal and
 * fault-tolerance knobs (checkpoint/resume/retries/fail-fast). */
inline RunnerOptions
runnerOptions(const BenchOptions &options,
              obs::RunJournal *journal = nullptr)
{
    RunnerOptions runner;
    runner.threads = options.threads;
    runner.journal = journal;
    runner.retries = options.retries;
    runner.failFast = options.failFast;
    runner.checkpointPath = options.checkpointPath;
    runner.resume = options.resume;
    runner.fused = options.fused;
    runner.simd = options.simd;
    runner.cacheDir = options.cacheDir;
    runner.shardIndex = options.shardIndex;
    runner.shardCount = options.shardCount;
    return runner;
}

/** Write the journal JSONL + metrics files (no-op when off). */
inline void
writeJournal(const BenchOptions &options,
             const obs::RunJournal *journal)
{
    if (journal == nullptr || options.journalPath.empty())
        return;
    journal->writeJsonl(options.journalPath);
    const std::string metrics =
        obs::RunJournal::metricsPathFor(options.journalPath);
    journal->writeMetrics(metrics);
    std::printf("journal: %s\nmetrics: %s\n",
                options.journalPath.c_str(), metrics.c_str());
}

/**
 * Journal wiring for the manual (non-runner) benches: opens the
 * journal when --journal was given, records run_begin immediately and
 * run_end from finish(), and brackets named sections of the bench
 * body as phase events so the table passes show up in the timeline.
 */
class BenchJournal
{
  public:
    BenchJournal(const BenchOptions &options, std::string label)
        : journalPath(options.journalPath)
    {
        if (journalPath.empty())
            return;
        journal =
            std::make_unique<obs::RunJournal>(std::move(label));
        const SimdLevel level = resolveSimdLevel(options.simd);
        journal->record(
            obs::EventKind::RunBegin, 0, journal->runLabel(),
            {obs::Field::u64("threads", options.threads),
             obs::Field::str("dispatch", simdLevelName(level)),
             obs::Field::u64("simd_width", simdWidth(level))});
    }

    /** The journal, null when --journal was not given. */
    obs::RunJournal *get() { return journal.get(); }

    /** Counter registry for SimOptions/ExperimentConfig wiring
     * (null when journaling is off). */
    CounterRegistry *
    counters()
    {
        return journal ? &journal->counters() : nullptr;
    }

    /** RAII phase bracket: phase_begin now, phase_end (with the
     * elapsed seconds) when the section leaves scope. */
    class Section
    {
      public:
        Section(BenchJournal &parent, std::string name)
            : journal(parent.journal.get()), name(std::move(name)),
              timer(journal ? &journal->timers() : nullptr,
                    "bench." + this->name)
        {
            if (journal != nullptr)
                journal->record(obs::EventKind::PhaseBegin, 0,
                                this->name);
        }

        Section(const Section &) = delete;
        Section &operator=(const Section &) = delete;

        ~Section()
        {
            if (journal != nullptr) {
                journal->record(
                    obs::EventKind::PhaseEnd, 0, name,
                    {obs::Field::f64("seconds", timer.stop())});
            }
        }

      private:
        obs::RunJournal *journal;
        std::string name;
        ScopedTimer timer;
    };

    Section section(std::string name) { return {*this, std::move(name)}; }

    /** Record run_end and write the JSONL + metrics files. */
    void
    finish()
    {
        if (journal == nullptr)
            return;
        journal->record(
            obs::EventKind::RunEnd, 0, journal->runLabel(),
            {obs::Field::f64("seconds",
                             journal->secondsSinceStart())});
        journal->writeJsonl(journalPath);
        const std::string metrics =
            obs::RunJournal::metricsPathFor(journalPath);
        journal->writeMetrics(metrics);
        std::printf("journal: %s\nmetrics: %s\n", journalPath.c_str(),
                    metrics.c_str());
    }

  private:
    std::string journalPath;
    std::unique_ptr<obs::RunJournal> journal;
};

/** Percentage improvement (positive = better) formatted as "+x.x%". */
inline std::string
formatImprovement(double base_misp_ki, double with_misp_ki)
{
    if (base_misp_ki == 0.0)
        return "  n/a";
    const double pct =
        100.0 * (base_misp_ki - with_misp_ki) / base_misp_ki;
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%+5.1f%%", pct);
    return buf;
}

} // namespace bpsim::bench

#endif // BPSIM_BENCH_BENCH_UTIL_HH
