/**
 * @file
 * Small shared helpers for the table/figure reproduction benches.
 */

#ifndef BPSIM_BENCH_BENCH_UTIL_HH
#define BPSIM_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <string>

#include "core/experiment.hh"
#include "workload/specint.hh"

namespace bpsim::bench
{

/** Branches simulated per evaluation run in the benches. */
constexpr Count evalBranches = 2'000'000;

/** Branches simulated per profiling (selection-phase) run. */
constexpr Count profileBranches = 1'000'000;

/** Shared experiment defaults. */
inline ExperimentConfig
baseConfig(PredictorKind kind, std::size_t size_bytes,
           StaticScheme scheme)
{
    ExperimentConfig config;
    config.kind = kind;
    config.sizeBytes = size_bytes;
    config.scheme = scheme;
    config.profileBranches = profileBranches;
    config.evalBranches = evalBranches;
    return config;
}

/** Percentage improvement (positive = better) formatted as "+x.x%". */
inline std::string
formatImprovement(double base_misp_ki, double with_misp_ki)
{
    if (base_misp_ki == 0.0)
        return "  n/a";
    const double pct =
        100.0 * (base_misp_ki - with_misp_ki) / base_misp_ki;
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%+5.1f%%", pct);
    return buf;
}

} // namespace bpsim::bench

#endif // BPSIM_BENCH_BENCH_UTIL_HH
