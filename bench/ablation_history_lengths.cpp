/**
 * @file
 * Ablation bench (DESIGN.md decision #2): sweep the per-bank history
 * lengths of 2bcgskew around the auto defaults and report MISP/KI on
 * go and gcc. The paper states it "selected the best history lengths"
 * for its 2bcgskew simulations; this bench shows how sensitive the
 * result is to that choice on our workloads.
 */

#include <cstdio>

#include "bench_util.hh"
#include "core/engine.hh"
#include "predictor/two_bc_gskew.hh"

using namespace bpsim;
using namespace bpsim::bench;

int
main()
{
    const std::size_t size_bytes = 8192; // 13 index bits per bank

    std::printf("Ablation: 2bcgskew history lengths (8 KB), MISP/KI\n"
                "\n");
    std::printf("%6s %6s %6s | %10s %10s\n", "hG0", "hG1", "hMeta",
                "go", "gcc");

    const BitCount g0_options[] = {3, 6, 10};
    const BitCount g1_options[] = {8, 13, 20};
    const BitCount meta_options[] = {6};

    for (const BitCount g0 : g0_options) {
        for (const BitCount g1 : g1_options) {
            for (const BitCount meta : meta_options) {
                std::printf("%6u %6u %6u |", g0, g1, meta);
                for (const auto id :
                     {SpecProgram::Go, SpecProgram::Gcc}) {
                    SyntheticProgram program =
                        makeSpecProgram(id, InputSet::Ref);
                    TwoBcGskew predictor(size_bytes, g0, g1, meta);
                    SimOptions options;
                    options.maxBranches = evalBranches;
                    SimStats stats =
                        simulate(predictor, program, options);
                    std::printf(" %10.2f", stats.mispKi());
                }
                std::printf("\n");
            }
        }
    }

    std::printf("\nAuto defaults at this size: hG0=6 hG1=13 hMeta=6.\n");
    return 0;
}
