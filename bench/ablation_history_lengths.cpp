/**
 * @file
 * Ablation bench (DESIGN.md decision #2): sweep the per-bank history
 * lengths of 2bcgskew around the auto defaults and report MISP/KI on
 * go and gcc. The paper states it "selected the best history lengths"
 * for its 2bcgskew simulations; this bench shows how sensitive the
 * result is to that choice on our workloads.
 *
 * The sweep runs as a parallel matrix: each cell carries a custom
 * 2bcgskew construction via ExperimentConfig::makeDynamic and replays
 * the shared per-program buffer.
 */

#include <cstdio>
#include <memory>

#include "bench_util.hh"
#include "predictor/two_bc_gskew.hh"

using namespace bpsim;
using namespace bpsim::bench;

int
main(int argc, char **argv)
{
    const BenchOptions options =
        parseBenchOptions(argc, argv, "ablation_history_lengths");
    const std::size_t size_bytes = 8192; // 13 index bits per bank

    const BitCount g0_options[] = {3, 6, 10};
    const BitCount g1_options[] = {8, 13, 20};
    const BitCount meta_options[] = {6};

    const auto journal =
        makeJournal(options, "ablation_history_lengths");
    ExperimentRunner runner(runnerOptions(options, journal.get()));
    std::size_t program_index[2];
    std::size_t next_program = 0;
    for (const auto id : {SpecProgram::Go, SpecProgram::Gcc}) {
        program_index[next_program++] =
            runner.addProgram(makeSpecProgram(id, InputSet::Ref));
    }

    for (const BitCount g0 : g0_options) {
        for (const BitCount g1 : g1_options) {
            for (const BitCount meta : meta_options) {
                for (const std::size_t program : program_index) {
                    ExperimentConfig config;
                    config.scheme = StaticScheme::None;
                    config.evalBranches = evalBranches;
                    config.evalWarmupBranches = options.warmupBranches;
                    config.makeDynamic = [=] {
                        return std::make_unique<TwoBcGskew>(
                            size_bytes, g0, g1, meta);
                    };
                    runner.addCell(
                        program, config,
                        runner.program(program).name() +
                            "/2bcgskew:" + std::to_string(g0) + ":" +
                            std::to_string(g1) + ":" +
                            std::to_string(meta));
                }
            }
        }
    }
    const MatrixResult result = runner.run();

    std::printf("Ablation: 2bcgskew history lengths (8 KB), MISP/KI\n"
                "\n");
    std::printf("%6s %6s %6s | %10s %10s\n", "hG0", "hG1", "hMeta",
                "go", "gcc");

    std::size_t cell = 0;
    for (const BitCount g0 : g0_options) {
        for (const BitCount g1 : g1_options) {
            for (const BitCount meta : meta_options) {
                std::printf("%6u %6u %6u |", g0, g1, meta);
                for (std::size_t p = 0; p < 2; ++p) {
                    std::printf(
                        " %10.2f",
                        result.cells[cell++].result.stats.mispKi());
                }
                std::printf("\n");
            }
        }
    }

    std::printf("\nAuto defaults at this size: hG0=6 hG1=13 hMeta=6.\n");

    if (!options.jsonPath.empty()) {
        writeRunnerJson(options.jsonPath, "ablation_history_lengths",
                        runner, result, options.baselineSeconds);
    }
    writeJournal(options, journal.get());
    return 0;
}
