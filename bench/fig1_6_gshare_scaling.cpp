/**
 * @file
 * Reproduces Figures 1-6 of the paper: MISP/KI and total collision
 * counts versus gshare predictor size, with and without Static_Acc
 * static prediction, one series pair per program.
 *
 * Paper shapes to verify:
 *  - static prediction always reduces MISP/KI for gshare, more so at
 *    smaller sizes;
 *  - total collisions almost always drop with static prediction;
 *  - gcc keeps improving with capacity (aliasing-dominated), ijpeg
 *    barely moves (little aliasing).
 */

#include <cstdio>

#include "bench_util.hh"

using namespace bpsim;
using namespace bpsim::bench;

int
main(int argc, char **argv)
{
    const BenchOptions options =
        parseBenchOptions(argc, argv, "fig1_6_gshare_scaling");
    BenchJournal journal(options, "fig1_6_gshare_scaling");
    const std::size_t sizes_kb[] = {1, 2, 4, 8, 16, 32, 64};

    std::printf("Figures 1-6: gshare size sweep, no-static vs "
                "Static_Acc (self-trained)\n");

    for (const auto id : allSpecPrograms()) {
        SyntheticProgram program = makeSpecProgram(id, InputSet::Ref);
        auto section = journal.section(program.name());
        std::printf("\n[%s]\n", program.name().c_str());
        std::printf("%6s %12s %12s %8s %14s %14s\n", "size", "MISP/KI",
                    "MISP/KI+st", "improv", "collisions",
                    "collisions+st");

        for (const std::size_t kb : sizes_kb) {
            ExperimentConfig config = baseConfig(
                PredictorKind::Gshare, kb * 1024, StaticScheme::None);
            config.counters = journal.counters();
            ExperimentResult base = runExperiment(program, config);

            config.scheme = StaticScheme::StaticAcc;
            ExperimentResult with = runExperiment(program, config);

            std::printf("%4zuKB %12.2f %12.2f %8s %14llu %14llu\n", kb,
                        base.stats.mispKi(), with.stats.mispKi(),
                        formatImprovement(base.stats.mispKi(),
                                          with.stats.mispKi())
                            .c_str(),
                        static_cast<unsigned long long>(
                            base.stats.collisions.collisions),
                        static_cast<unsigned long long>(
                            with.stats.collisions.collisions));
        }
    }
    journal.finish();
    return 0;
}
