/**
 * @file
 * Ablation bench: the paper's single-iteration Static_Fac against the
 * full Lindsay-style iterative selection loop it was simplified from.
 * Later rounds profile the combined predictor with earlier rounds'
 * branches already removed, so they see the residual aliasing; the
 * question is how much that second look buys.
 *
 * The base and single-shot cells run through the experiment matrix;
 * the iterative loops (inherently sequential per program) run one per
 * program across the pool, replaying the same shared buffers.
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.hh"
#include "core/engine.hh"
#include "core/iterative.hh"

using namespace bpsim;
using namespace bpsim::bench;

namespace
{

/** Per-program outcome of the iterative selection + evaluation. */
struct IterativeRow
{
    SimStats stats;
    std::size_t hints = 0;
    unsigned rounds = 0;
};

} // namespace

int
main(int argc, char **argv)
{
    const BenchOptions options =
        parseBenchOptions(argc, argv, "ablation_iterative");
    const std::size_t size_bytes = 4096;

    const auto journal = makeJournal(options, "ablation_iterative");
    ExperimentRunner runner(runnerOptions(options, journal.get()));
    for (const auto id : allSpecPrograms()) {
        const std::size_t program =
            runner.addProgram(makeSpecProgram(id, InputSet::Ref));
        ExperimentConfig base = baseConfig(
            PredictorKind::Gshare, size_bytes, StaticScheme::None);
        base.evalWarmupBranches = options.warmupBranches;
        runner.addCell(program, base);
        ExperimentConfig fac = baseConfig(
            PredictorKind::Gshare, size_bytes, StaticScheme::StaticFac);
        fac.evalWarmupBranches = options.warmupBranches;
        runner.addCell(program, fac);
        // The iterative rounds profile and evaluate over the same
        // buffer; make it long enough for both passes.
        runner.requireBuffer(program, InputSet::Ref,
                             std::max(profileBranches, evalBranches));
    }
    const MatrixResult result = runner.run();

    // The iterative pass runs after run() (so after run_end); it
    // feeds the journal's timers and counters, which carry no event
    // ordering, rather than emitting phase events of its own.
    TimerRegistry *timers =
        journal ? &journal->timers() : nullptr;
    std::vector<IterativeRow> rows(runner.programCount());
    runner.pool().parallelFor(
        runner.programCount(), [&](std::size_t p) {
            ScopedTimer timer(timers, "bench.iterative");
            IterativeConfig iterative;
            iterative.kind = PredictorKind::Gshare;
            iterative.sizeBytes = size_bytes;
            iterative.profileBranches = profileBranches;

            ReplayBuffer::Cursor profile_stream =
                runner.buffer(p, InputSet::Ref).cursor();
            const IterativeResult selection =
                selectStaticIterative(profile_stream, iterative);

            CombinedPredictor combined(
                makePredictor(iterative.kind, size_bytes),
                selection.hints);
            ReplayBuffer::Cursor eval_stream =
                runner.buffer(p, InputSet::Ref).cursor();
            SimOptions sim_options;
            sim_options.maxBranches = evalBranches;
            sim_options.counters =
                journal ? &journal->counters() : nullptr;
            rows[p].stats =
                simulate(combined, eval_stream, sim_options);
            rows[p].hints = selection.hints.size();
            rows[p].rounds = selection.iterations;
        });

    std::printf("Ablation: single-shot Static_Fac vs iterative "
                "(Lindsay) selection, gshare 4 KB\n\n");
    std::printf("%-10s %8s | %10s %7s | %10s %7s %6s\n", "program",
                "base", "fac x1", "hints", "iterative", "hints",
                "rounds");

    for (std::size_t p = 0; p < runner.programCount(); ++p) {
        const ExperimentResult &base = result.cells[2 * p].result;
        const ExperimentResult &single =
            result.cells[2 * p + 1].result;
        std::printf("%-10s %8.2f | %10.2f %7zu | %10.2f %7zu %6u\n",
                    runner.program(p).name().c_str(),
                    base.stats.mispKi(), single.stats.mispKi(),
                    single.hintCount, rows[p].stats.mispKi(),
                    rows[p].hints, rows[p].rounds);
    }

    std::printf("\nExpected shape: iterating adds a modest second "
                "tranche of hints and matches or beats the single "
                "pass everywhere.\n");

    if (!options.jsonPath.empty()) {
        writeRunnerJson(options.jsonPath, "ablation_iterative",
                        runner, result, options.baselineSeconds);
    }
    writeJournal(options, journal.get());
    return 0;
}
