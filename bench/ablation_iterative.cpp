/**
 * @file
 * Ablation bench: the paper's single-iteration Static_Fac against the
 * full Lindsay-style iterative selection loop it was simplified from.
 * Later rounds profile the combined predictor with earlier rounds'
 * branches already removed, so they see the residual aliasing; the
 * question is how much that second look buys.
 */

#include <cstdio>

#include "bench_util.hh"
#include "core/engine.hh"
#include "core/iterative.hh"

using namespace bpsim;
using namespace bpsim::bench;

int
main()
{
    std::printf("Ablation: single-shot Static_Fac vs iterative "
                "(Lindsay) selection, gshare 4 KB\n\n");
    std::printf("%-10s %8s | %10s %7s | %10s %7s %6s\n", "program",
                "base", "fac x1", "hints", "iterative", "hints",
                "rounds");

    for (const auto id : allSpecPrograms()) {
        SyntheticProgram program = makeSpecProgram(id, InputSet::Ref);

        ExperimentConfig config = baseConfig(
            PredictorKind::Gshare, 4096, StaticScheme::None);
        const double base =
            runExperiment(program, config).stats.mispKi();

        config.scheme = StaticScheme::StaticFac;
        const ExperimentResult single =
            runExperiment(program, config);

        IterativeConfig iterative;
        iterative.kind = PredictorKind::Gshare;
        iterative.sizeBytes = 4096;
        iterative.profileBranches = profileBranches;
        const IterativeResult selection =
            selectStaticIterative(program, iterative);

        program.setInput(InputSet::Ref);
        CombinedPredictor combined(makePredictor(iterative.kind, 4096),
                                   selection.hints);
        SimOptions options;
        options.maxBranches = evalBranches;
        const SimStats iterated =
            simulate(combined, program, options);

        std::printf("%-10s %8.2f | %10.2f %7zu | %10.2f %7zu %6u\n",
                    program.name().c_str(), base,
                    single.stats.mispKi(), single.hintCount,
                    iterated.mispKi(), selection.hints.size(),
                    selection.iterations);
    }

    std::printf("\nExpected shape: iterating adds a modest second "
                "tranche of hints and matches or beats the single "
                "pass everywhere.\n");
    return 0;
}
