/**
 * @file
 * Multi-context scenarios over a shared predictor: the registry
 * family (gshare / 2bcgskew / bimode / agree / tage / perceptron)
 * under four static schemes while three programs (go, gcc, compress)
 * share the tables through each interleave kind — SMT round-robin,
 * OS context switching, and Zipfian server traffic.
 *
 * The question this bench answers for EXPERIMENTS.md: how much of a
 * shared predictor's aliasing is *cross-context* (one tenant evicting
 * another's state), which contexts suffer it, and how much of it
 * profile-directed static schemes claw back. Every scenario cell
 * reports per-context MISP/KI plus the NxN victim x aggressor
 * collision matrix (printed for the no-scheme column; all cells land
 * in BENCH_multicontext.json for the schema validator).
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "scenario/scenario.hh"

using namespace bpsim;
using namespace bpsim::bench;

namespace
{

const std::vector<std::string> predictors = {
    "gshare", "2bcgskew", "bimode", "agree", "tage", "perceptron"};

const StaticScheme schemes[] = {
    StaticScheme::None, StaticScheme::Static95,
    StaticScheme::StaticAcc, StaticScheme::StaticAlias};

constexpr std::size_t schemeCount =
    sizeof(schemes) / sizeof(schemes[0]);

const ScenarioKind kinds[] = {ScenarioKind::Smt,
                              ScenarioKind::ContextSwitch,
                              ScenarioKind::Server};

const SpecProgram memberIds[] = {SpecProgram::Go, SpecProgram::Gcc,
                                 SpecProgram::Compress};

constexpr std::size_t contextCount =
    sizeof(memberIds) / sizeof(memberIds[0]);

std::vector<SyntheticProgram>
makeMembers()
{
    std::vector<SyntheticProgram> members;
    for (const SpecProgram id : memberIds)
        members.push_back(makeSpecProgram(id, InputSet::Ref));
    return members;
}

/** Share of a cell's classified collisions that crossed contexts. */
double
crossShare(const std::vector<ContextAliasCell> &matrix,
           std::size_t contexts, bool destructive_only)
{
    Count cross = 0;
    Count total = 0;
    for (std::size_t v = 0; v < contexts; ++v) {
        for (std::size_t a = 0; a < contexts; ++a) {
            const ContextAliasCell &cell = matrix[v * contexts + a];
            const Count n = destructive_only ? cell.destructive
                                             : cell.collisions;
            total += n;
            if (v != a)
                cross += n;
        }
    }
    return total == 0
               ? 0.0
               : 100.0 * static_cast<double>(cross) /
                     static_cast<double>(total);
}

} // namespace

int
main(int argc, char **argv)
{
    const BenchOptions options = parseBenchOptions(
        argc, argv, "fig_multicontext", "BENCH_multicontext.json",
        multicontextBaselineSeconds);
    const std::size_t size_bytes = 8192;

    const auto journal = makeJournal(options, "fig_multicontext");
    ExperimentRunner runner(runnerOptions(options, journal.get()));
    for (const ScenarioKind kind : kinds) {
        ScenarioSpec spec;
        spec.kind = kind;
        const std::size_t workload = runner.addWorkload(
            std::make_unique<ScenarioWorkload>(spec, makeMembers()));
        for (const std::string &predictor : predictors) {
            for (const StaticScheme scheme : schemes) {
                ExperimentConfig config = baseConfig(
                    PredictorKind::Gshare, size_bytes, scheme);
                config.predictor = predictor;
                config.evalWarmupBranches = options.warmupBranches;
                config.scenarioContexts = contextCount;
                runner.addCell(workload, config);
            }
        }
    }
    const MatrixResult result = runner.run();

    std::printf("Multi-context scenarios: MISP/KI per predictor and "
                "static scheme (8 KB shared predictors, %zu "
                "contexts: go/gcc/compress)\n",
                contextCount);

    std::size_t cell = 0;
    for (std::size_t s = 0; s < runner.programCount(); ++s) {
        std::printf("\n[%s]\n", runner.program(s).name().c_str());
        std::printf("%-10s %8s %11s %11s %13s %7s %7s\n", "predictor",
                    "none", "static_95", "static_acc", "static_alias",
                    "xcoll%", "xdest%");
        const std::size_t block = cell;
        for (std::size_t k = 0; k < predictors.size(); ++k) {
            const CellResult *columns[schemeCount];
            for (std::size_t c = 0; c < schemeCount; ++c)
                columns[c] = &result.cells[cell++];
            const auto misp = [](const CellResult &c) {
                if (c.shardSkipped || !c.ok())
                    return std::string("-");
                char buf[32];
                std::snprintf(buf, sizeof(buf), "%.2f",
                              c.result.stats.mispKi());
                return std::string(buf);
            };
            // Cross-context shares read off the no-scheme column:
            // that is the raw interference the schemes then attack.
            std::string xcoll = "-";
            std::string xdest = "-";
            const CellResult &base = *columns[0];
            if (!base.shardSkipped && base.ok() &&
                base.result.aliasMatrix.size() ==
                    contextCount * contextCount) {
                char buf[32];
                std::snprintf(buf, sizeof(buf), "%.1f",
                              crossShare(base.result.aliasMatrix,
                                         contextCount, false));
                xcoll = buf;
                std::snprintf(buf, sizeof(buf), "%.1f",
                              crossShare(base.result.aliasMatrix,
                                         contextCount, true));
                xdest = buf;
            }
            std::printf("%-10s %8s %11s %11s %13s %7s %7s\n",
                        predictors[k].c_str(),
                        misp(*columns[0]).c_str(),
                        misp(*columns[1]).c_str(),
                        misp(*columns[2]).c_str(),
                        misp(*columns[3]).c_str(), xcoll.c_str(),
                        xdest.c_str());
        }

        // Per-context attribution and the destructive-collision
        // matrix for the scenario's gshare/none cell: gshare has no
        // anti-aliasing machinery, so it shows the interleave's raw
        // interference pattern most clearly.
        const CellResult &sample = result.cells[block];
        if (!sample.shardSkipped && sample.ok() &&
            sample.result.contextStats.size() == contextCount) {
            std::printf("  gshare/none per context:");
            for (std::size_t c = 0; c < contextCount; ++c) {
                const ContextStats &ctx =
                    sample.result.contextStats[c];
                std::printf("  ctx%zu(%s) MISP/KI=%.2f", c,
                            specProgramName(memberIds[c]).c_str(),
                            ctx.mispKi());
            }
            std::printf("\n");
            if (sample.result.aliasMatrix.size() ==
                contextCount * contextCount) {
                std::printf("  destructive collisions "
                            "(row=victim, col=aggressor):\n");
                for (std::size_t v = 0; v < contextCount; ++v) {
                    std::printf("    ctx%zu:", v);
                    for (std::size_t a = 0; a < contextCount; ++a) {
                        std::printf(
                            " %10llu",
                            static_cast<unsigned long long>(
                                sample.result
                                    .aliasMatrix[v * contextCount + a]
                                    .destructive));
                    }
                    std::printf("\n");
                }
            }
        }
    }

    std::printf("\n%zu cells, %u threads: %.2fs wall "
                "(materialize %.2fs), %.1fM branches/s\n",
                result.cells.size(), result.threads,
                result.wallSeconds, result.materializeSeconds,
                static_cast<double>(result.totalBranches) / 1e6 /
                    result.wallSeconds);

    if (!options.jsonPath.empty()) {
        writeRunnerJson(options.jsonPath, "fig_multicontext", runner,
                        result, options.baselineSeconds);
    }
    writeJournal(options, journal.get());
    return 0;
}
